#include "memory/governor.h"

#include <algorithm>

#include "telemetry/metrics.h"

namespace partix::memory {

namespace {

/// Process-wide governor telemetry. Byte gauges aggregate with Add()
/// deltas so multiple governors (one per node) sum instead of stomping.
struct GovernorTelemetry {
  telemetry::Gauge* budget_bytes;
  telemetry::Gauge* charged_bytes;
  telemetry::Counter* pressure_events;
  telemetry::Counter* evictions;
  telemetry::Counter* evicted_bytes;
  telemetry::Counter* overcommits;

  static GovernorTelemetry& Get() {
    static GovernorTelemetry t = [] {
      auto& reg = telemetry::MetricsRegistry::Global();
      GovernorTelemetry x;
      x.budget_bytes = reg.GetGauge("partix_governor_budget_bytes");
      x.charged_bytes = reg.GetGauge("partix_governor_charged_bytes");
      x.pressure_events =
          reg.GetCounter("partix_governor_pressure_events_total");
      x.evictions = reg.GetCounter("partix_governor_evictions_total");
      x.evicted_bytes = reg.GetCounter("partix_governor_evicted_bytes_total");
      x.overcommits = reg.GetCounter("partix_governor_overcommits_total");
      return x;
    }();
    return t;
  }
};

}  // namespace

MemoryGovernor::MemoryGovernor(size_t budget_bytes) : budget_(budget_bytes) {
  GovernorTelemetry::Get().budget_bytes->Add(static_cast<double>(budget_));
}

MemoryGovernor::~MemoryGovernor() {
  GovernorTelemetry& t = GovernorTelemetry::Get();
  t.budget_bytes->Add(-static_cast<double>(budget_));
  t.charged_bytes->Add(-static_cast<double>(charged_));
}

int MemoryGovernor::RegisterConsumer(std::string name, int priority,
                                     EvictFn evict) {
  std::lock_guard<std::mutex> lock(mu_);
  Consumer consumer;
  consumer.id = next_id_++;
  consumer.name = std::move(name);
  consumer.priority = priority;
  consumer.evict = std::move(evict);
  consumer.live = true;
  consumers_.push_back(std::move(consumer));
  return consumers_.back().id;
}

void MemoryGovernor::UnregisterConsumer(int id) {
  size_t released = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = consumers_.begin(); it != consumers_.end(); ++it) {
      if (it->id == id && it->live) {
        released = it->charged;
        charged_ -= released;
        consumers_.erase(it);
        break;
      }
    }
  }
  if (released > 0) {
    GovernorTelemetry::Get().charged_bytes->Add(-static_cast<double>(released));
  }
}

void MemoryGovernor::Charge(int id, size_t bytes) {
  if (bytes == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  for (Consumer& c : consumers_) {
    if (c.id == id) {
      c.charged += bytes;
      break;
    }
  }
  charged_ += bytes;
  if (charged_ > peak_charged_) peak_charged_ = charged_;
  GovernorTelemetry::Get().charged_bytes->Add(static_cast<double>(bytes));
  if (budget_ > 0 && charged_ > budget_) {
    ++stats_.pressure_events;
    GovernorTelemetry::Get().pressure_events->Add(1);
    RelievePressure(lock);
  }
}

void MemoryGovernor::Release(int id, size_t bytes) {
  if (bytes == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (Consumer& c : consumers_) {
    if (c.id == id) {
      size_t delta = std::min(bytes, c.charged);
      c.charged -= delta;
      charged_ -= std::min(bytes, charged_);
      GovernorTelemetry::Get().charged_bytes->Add(-static_cast<double>(delta));
      return;
    }
  }
}

size_t MemoryGovernor::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

void MemoryGovernor::set_budget_bytes(size_t bytes) {
  std::unique_lock<std::mutex> lock(mu_);
  GovernorTelemetry::Get().budget_bytes->Add(static_cast<double>(bytes) -
                                             static_cast<double>(budget_));
  budget_ = bytes;
  if (budget_ > 0 && charged_ > budget_) {
    ++stats_.pressure_events;
    GovernorTelemetry::Get().pressure_events->Add(1);
    RelievePressure(lock);
  }
}

size_t MemoryGovernor::charged_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return charged_;
}

size_t MemoryGovernor::consumer_bytes(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Consumer& c : consumers_) {
    if (c.id == id) return c.charged;
  }
  return 0;
}

size_t MemoryGovernor::headroom_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return charged_ < budget_ ? budget_ - charged_ : 0;
}

size_t MemoryGovernor::peak_charged_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_charged_;
}

void MemoryGovernor::ResetPeakCharged() {
  std::lock_guard<std::mutex> lock(mu_);
  peak_charged_ = charged_;
}

GovernorStats MemoryGovernor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MemoryGovernor::RelievePressure(std::unique_lock<std::mutex>& lock) {
  // A callback may Charge() recursively (e.g. an eviction that rebuilds
  // an index); the outer run will re-check, so inner runs collapse.
  if (evicting_) return;
  evicting_ = true;
  // Bounded rounds: each round sweeps consumers in ascending priority
  // and stops early once under budget; a round that frees nothing ends
  // the run (the remainder is pinned — overcommit).
  for (int round = 0; round < 8 && charged_ > budget_; ++round) {
    // Snapshot eviction order under the lock.
    std::vector<std::pair<int, int>> order;  // (priority, id)
    order.reserve(consumers_.size());
    for (const Consumer& c : consumers_) {
      if (c.evict && c.charged > 0) order.emplace_back(c.priority, c.id);
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    size_t freed_this_round = 0;
    for (const auto& [priority, id] : order) {
      (void)priority;
      if (charged_ <= budget_) break;
      size_t overage = charged_ - budget_;
      EvictFn evict;
      size_t target = 0;
      for (const Consumer& c : consumers_) {
        if (c.id == id && c.evict && c.charged > 0) {
          evict = c.evict;
          target = std::min(overage, c.charged);
          break;
        }
      }
      if (!evict || target == 0) continue;
      ++stats_.eviction_calls;
      GovernorTelemetry::Get().evictions->Add(1);
      size_t freed = 0;
      lock.unlock();
      // The callback releases its bytes via Release(), which re-locks;
      // our own lock is dropped so that cannot deadlock.
      freed = evict(target);
      lock.lock();
      stats_.evicted_bytes += freed;
      if (freed > 0) {
        GovernorTelemetry::Get().evicted_bytes->Add(freed);
      }
      freed_this_round += freed;
    }
    if (freed_this_round == 0) {
      ++stats_.overcommits;
      GovernorTelemetry::Get().overcommits->Add(1);
      break;
    }
  }
  evicting_ = false;
}

}  // namespace partix::memory
