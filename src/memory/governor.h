#ifndef PARTIX_MEMORY_GOVERNOR_H_
#define PARTIX_MEMORY_GOVERNOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace partix::memory {

/// Point-in-time statistics of a MemoryGovernor.
struct GovernorStats {
  /// Charges (or budget shrinks) that pushed charged bytes over budget.
  uint64_t pressure_events = 0;
  /// Evict-callback invocations made to relieve pressure.
  uint64_t eviction_calls = 0;
  /// Bytes callbacks reported freed.
  uint64_t evicted_bytes = 0;
  /// Pressure rounds that ended still over budget (every evictable
  /// consumer was drained; the remainder is pinned or in flight).
  uint64_t overcommits = 0;
};

/// One byte budget shared by every memory consumer of a node: the parse
/// cache, the plan cache, and in-flight result buffers. Consumers
/// register with a priority and an optional evict callback; Charge()
/// beyond the budget triggers pressure-driven eviction in ascending
/// priority order (lowest priority sheds first) until the budget holds
/// or nothing more can be evicted. Consumers without a callback (e.g.
/// pinned in-flight results) are never asked to shed — the governor
/// tracks them and lets caches absorb the pressure.
///
/// Deadlock contract: evict callbacks are invoked with the governor
/// mutex *released*, so a callback may call back into Release(). In
/// exchange, a consumer's callback must be safe to run from whatever
/// thread charges the governor. For a per-node governor every consumer
/// lives behind that node's driver mutex, which serializes all charges
/// and callbacks; a coordinator-level governor must only register
/// thread-safe (or callback-free) consumers.
///
/// Thread-safety: all methods are thread-safe; see the callback contract
/// above for what that demands of consumers.
class MemoryGovernor {
 public:
  /// Eviction priorities, ascending = shed first. Gaps are deliberate;
  /// consumers may register anywhere on the scale.
  static constexpr int kPriorityParseCache = 0;
  static constexpr int kPriorityPlanCache = 10;
  static constexpr int kPriorityPinned = 1000;

  /// Asked to free at least `target_bytes`; returns bytes actually freed
  /// (the consumer calls Release() for them itself).
  using EvictFn = std::function<size_t(size_t target_bytes)>;

  explicit MemoryGovernor(size_t budget_bytes);
  ~MemoryGovernor();
  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  /// Registers a consumer; returns its id. `evict` may be null for
  /// pinned consumers.
  int RegisterConsumer(std::string name, int priority, EvictFn evict);

  /// Unregisters `id`, releasing any bytes still charged to it.
  void UnregisterConsumer(int id);

  /// Adds `bytes` to the consumer's charge; runs pressure eviction when
  /// the total exceeds the budget. The charge always succeeds — the
  /// budget bounds steady-state retention, admission control bounds
  /// intake (see Scheduler).
  void Charge(int id, size_t bytes);

  /// Subtracts `bytes` from the consumer's charge.
  void Release(int id, size_t bytes);

  size_t budget_bytes() const;
  /// Shrinking under the current charge triggers pressure eviction.
  void set_budget_bytes(size_t bytes);

  size_t charged_bytes() const;
  size_t consumer_bytes(int id) const;
  /// budget - charged, floored at 0.
  size_t headroom_bytes() const;

  /// High-water mark of charged bytes since construction (or the last
  /// ResetPeakCharged). The streaming-pipeline tests and bench read this
  /// to prove bounded buffering: the peak must track block-buffer size,
  /// not total result size.
  size_t peak_charged_bytes() const;
  void ResetPeakCharged();

  GovernorStats stats() const;

 private:
  struct Consumer {
    int id = 0;
    std::string name;
    int priority = 0;
    EvictFn evict;
    size_t charged = 0;
    bool live = false;
  };

  /// Relieves pressure: picks eviction targets under the lock, invokes
  /// callbacks with the lock dropped, re-checks; bounded rounds, stops
  /// when a full sweep frees nothing.
  void RelievePressure(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mu_;
  size_t budget_ = 0;
  size_t charged_ = 0;
  size_t peak_charged_ = 0;
  int next_id_ = 1;
  bool evicting_ = false;  // collapse re-entrant pressure runs
  std::vector<Consumer> consumers_;
  GovernorStats stats_;
};

}  // namespace partix::memory

#endif  // PARTIX_MEMORY_GOVERNOR_H_
