#ifndef PARTIX_ENGINE_PERSISTENCE_H_
#define PARTIX_ENGINE_PERSISTENCE_H_

#include <string>

#include "common/result.h"
#include "engine/database.h"

namespace partix::xdb {

/// Directory-based persistence for collections, the way document-oriented
/// XML stores lay data out on disk:
///
///   <dir>/
///     MANIFEST          one line per document:
///                       <file>\t<doc name>\t<k=v;k=v metadata>
///     000000.xml        serialized documents, one file each
///     000001.xml
///
/// Out-of-band document metadata (including PartiX reconstruction IDs)
/// round-trips through the manifest.

/// Writes every document of `collection` under `dir` (created if needed;
/// must be empty of a previous MANIFEST).
Status ExportCollection(Database& db, const std::string& collection,
                        const std::string& dir);

/// Loads an exported directory into `collection` (created with `meta` if
/// absent).
Status ImportCollection(Database& db, const std::string& collection,
                        const std::string& dir,
                        CollectionMeta meta = CollectionMeta());

}  // namespace partix::xdb

#endif  // PARTIX_ENGINE_PERSISTENCE_H_
