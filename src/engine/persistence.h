#ifndef PARTIX_ENGINE_PERSISTENCE_H_
#define PARTIX_ENGINE_PERSISTENCE_H_

#include <string>

#include "common/result.h"
#include "engine/database.h"

namespace partix::xdb {

/// Directory-based persistence for collections, the way document-oriented
/// XML stores lay data out on disk:
///
///   <dir>/
///     MANIFEST          one line per document:
///                       <file>\t<doc name>\t<k=v;k=v metadata>
///     STRUCT            structural-label summary, one line per document:
///                       <file>\t<node count>\t<max level>\t<checksum hex>
///     000000.xml        serialized documents, one file each
///     000001.xml
///
/// Out-of-band document metadata (including PartiX reconstruction IDs)
/// round-trips through the manifest.
///
/// Structural labels (see docs/structural-index.md) are NOT stored: they
/// are a pure function of document structure, so re-parsing on import
/// reproduces them. STRUCT pins that contract — export writes a checksum
/// of each document's label stream, import recomputes it from the
/// re-parsed document and fails with Corruption on any drift (a serializer
/// or labeling change that would silently invalidate cross-fragment label
/// merges). A missing STRUCT (pre-label exports) skips verification.

/// Writes every document of `collection` under `dir` (created if needed;
/// must be empty of a previous MANIFEST).
Status ExportCollection(Database& db, const std::string& collection,
                        const std::string& dir);

/// Loads an exported directory into `collection` (created with `meta` if
/// absent).
Status ImportCollection(Database& db, const std::string& collection,
                        const std::string& dir,
                        CollectionMeta meta = CollectionMeta());

/// FNV-1a digest of a document's structural label stream — every node's
/// (pre, post, sub_max, level) plus its Dewey components, in node order.
/// What STRUCT records per document. Pre: doc.has_labels().
uint64_t StructuralLabelChecksum(const xml::Document& doc);

}  // namespace partix::xdb

#endif  // PARTIX_ENGINE_PERSISTENCE_H_
