#include "engine/persistence.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/strings.h"
#include "xml/serializer.h"

namespace partix::xdb {

namespace fs = std::filesystem;

namespace {

/// Escapes manifest field separators in metadata values.
std::string EscapeMeta(const std::string& v) {
  std::string out;
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case ';':
        out += "\\s";
        break;
      case '=':
        out += "\\e";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string UnescapeMeta(std::string_view v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] != '\\' || i + 1 >= v.size()) {
      out += v[i];
      continue;
    }
    ++i;
    switch (v[i]) {
      case '\\':
        out += '\\';
        break;
      case 's':
        out += ';';
        break;
      case 'e':
        out += '=';
        break;
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      default:
        out += v[i];
    }
  }
  return out;
}

}  // namespace

Status ExportCollection(Database& db, const std::string& collection,
                        const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create directory '" + dir +
                            "': " + ec.message());
  }
  if (fs::exists(fs::path(dir) / "MANIFEST")) {
    return Status::AlreadyExists("directory '" + dir +
                                 "' already holds an exported collection");
  }
  PARTIX_ASSIGN_OR_RETURN(std::vector<xml::DocumentPtr> docs,
                          db.AllDocuments(collection));
  std::ofstream manifest(fs::path(dir) / "MANIFEST");
  if (!manifest) {
    return Status::Internal("cannot write MANIFEST in '" + dir + "'");
  }
  size_t index = 0;
  for (const xml::DocumentPtr& doc : docs) {
    char file[32];
    std::snprintf(file, sizeof(file), "%06zu.xml", index++);
    std::ofstream out(fs::path(dir) / file);
    if (!out) {
      return Status::Internal(std::string("cannot write '") + file + "'");
    }
    out << xml::Serialize(*doc);
    out.close();
    std::string meta_field;
    for (const auto& [key, value] : doc->metadata()) {
      if (!meta_field.empty()) meta_field += ";";
      meta_field += EscapeMeta(key) + "=" + EscapeMeta(value);
    }
    manifest << file << '\t' << doc->doc_name() << '\t' << meta_field
             << '\n';
  }
  return Status::Ok();
}

Status ImportCollection(Database& db, const std::string& collection,
                        const std::string& dir, CollectionMeta meta) {
  std::ifstream manifest(fs::path(dir) / "MANIFEST");
  if (!manifest) {
    return Status::NotFound("no MANIFEST in '" + dir + "'");
  }
  if (!db.HasCollection(collection)) {
    PARTIX_RETURN_IF_ERROR(db.CreateCollection(collection, meta));
  }
  std::string line;
  size_t line_no = 0;
  while (std::getline(manifest, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = Split(line, '\t');
    if (fields.size() < 2) {
      return Status::Corruption("bad MANIFEST line " +
                                std::to_string(line_no) + " in '" + dir +
                                "'");
    }
    std::ifstream in(fs::path(dir) / std::string(fields[0]));
    if (!in) {
      return Status::Corruption("missing document file '" +
                                std::string(fields[0]) + "' in '" + dir +
                                "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::map<std::string, std::string> metadata;
    if (fields.size() >= 3 && !fields[2].empty()) {
      for (std::string_view pair : SplitSkipEmpty(fields[2], ';')) {
        size_t eq = pair.find('=');
        if (eq == std::string_view::npos) {
          return Status::Corruption("bad metadata on MANIFEST line " +
                                    std::to_string(line_no));
        }
        metadata[UnescapeMeta(pair.substr(0, eq))] =
            UnescapeMeta(pair.substr(eq + 1));
      }
    }
    PARTIX_RETURN_IF_ERROR(db.StoreSerializedWithMetadata(
        collection, std::string(fields[1]), buffer.str(),
        std::move(metadata)));
  }
  return Status::Ok();
}

}  // namespace partix::xdb
