#include "engine/persistence.h"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/strings.h"
#include "telemetry/metrics.h"
#include "xml/serializer.h"

namespace partix::xdb {

namespace fs = std::filesystem;

namespace {

/// Escapes manifest field separators in metadata values.
std::string EscapeMeta(const std::string& v) {
  std::string out;
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case ';':
        out += "\\s";
        break;
      case '=':
        out += "\\e";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string UnescapeMeta(std::string_view v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] != '\\' || i + 1 >= v.size()) {
      out += v[i];
      continue;
    }
    ++i;
    switch (v[i]) {
      case '\\':
        out += '\\';
        break;
      case 's':
        out += ';';
        break;
      case 'e':
        out += '=';
        break;
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      default:
        out += v[i];
    }
  }
  return out;
}

/// One parsed STRUCT line.
struct StructEntry {
  uint64_t node_count = 0;
  uint64_t max_level = 0;
  uint64_t checksum = 0;
};

bool ParseU64(std::string_view s, int base, uint64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out, base);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

uint64_t StructuralLabelChecksum(const xml::Document& doc) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ull;  // FNV-1a prime
    }
  };
  for (xml::NodeId n = 0; n < doc.node_count(); ++n) {
    const xml::NodeLabel& l = doc.label(n);
    mix(l.pre);
    mix(l.post);
    mix(l.sub_max);
    mix(l.level);
    uint32_t len = 0;
    const uint32_t* components = doc.dewey(n, &len);
    for (uint32_t i = 0; i < len; ++i) mix(components[i]);
  }
  return h;
}

Status ExportCollection(Database& db, const std::string& collection,
                        const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create directory '" + dir +
                            "': " + ec.message());
  }
  if (fs::exists(fs::path(dir) / "MANIFEST")) {
    return Status::AlreadyExists("directory '" + dir +
                                 "' already holds an exported collection");
  }
  PARTIX_ASSIGN_OR_RETURN(std::vector<xml::DocumentPtr> docs,
                          db.AllDocuments(collection));
  std::ofstream manifest(fs::path(dir) / "MANIFEST");
  if (!manifest) {
    return Status::Internal("cannot write MANIFEST in '" + dir + "'");
  }
  std::ofstream structs(fs::path(dir) / "STRUCT");
  if (!structs) {
    return Status::Internal("cannot write STRUCT in '" + dir + "'");
  }
  size_t index = 0;
  for (const xml::DocumentPtr& doc : docs) {
    char file[32];
    std::snprintf(file, sizeof(file), "%06zu.xml", index++);
    std::ofstream out(fs::path(dir) / file);
    if (!out) {
      return Status::Internal(std::string("cannot write '") + file + "'");
    }
    out << xml::Serialize(*doc);
    out.close();
    std::string meta_field;
    for (const auto& [key, value] : doc->metadata()) {
      if (!meta_field.empty()) meta_field += ";";
      meta_field += EscapeMeta(key) + "=" + EscapeMeta(value);
    }
    manifest << file << '\t' << doc->doc_name() << '\t' << meta_field
             << '\n';
    if (doc->has_labels() && !doc->empty()) {
      uint32_t max_level = 0;
      for (xml::NodeId n = 0; n < doc->node_count(); ++n) {
        max_level = std::max(max_level, doc->label(n).level);
      }
      char checksum[24];
      std::snprintf(checksum, sizeof(checksum), "%016llx",
                    static_cast<unsigned long long>(
                        StructuralLabelChecksum(*doc)));
      structs << file << '\t' << doc->node_count() << '\t' << max_level
              << '\t' << checksum << '\n';
    }
  }
  return Status::Ok();
}

Status ImportCollection(Database& db, const std::string& collection,
                        const std::string& dir, CollectionMeta meta) {
  std::ifstream manifest(fs::path(dir) / "MANIFEST");
  if (!manifest) {
    return Status::NotFound("no MANIFEST in '" + dir + "'");
  }
  if (!db.HasCollection(collection)) {
    PARTIX_RETURN_IF_ERROR(db.CreateCollection(collection, meta));
  }
  // STRUCT (when present) pins the structural labels the exporter saw;
  // entries are keyed by file and checked against the re-parsed documents
  // below. Exports that predate structural labels simply have no STRUCT.
  std::map<std::string, StructEntry> expected_labels;
  {
    std::ifstream structs(fs::path(dir) / "STRUCT");
    std::string sline;
    size_t sline_no = 0;
    while (structs && std::getline(structs, sline)) {
      ++sline_no;
      if (sline.empty()) continue;
      auto sfields = Split(sline, '\t');
      StructEntry entry;
      if (sfields.size() != 4 || !ParseU64(sfields[1], 10, &entry.node_count) ||
          !ParseU64(sfields[2], 10, &entry.max_level) ||
          !ParseU64(sfields[3], 16, &entry.checksum)) {
        return Status::Corruption("bad STRUCT line " +
                                  std::to_string(sline_no) + " in '" + dir +
                                  "'");
      }
      expected_labels[std::string(sfields[0])] = entry;
    }
  }
  // file -> doc name, for matching STRUCT entries after the load.
  std::map<std::string, std::string> doc_names;
  std::string line;
  size_t line_no = 0;
  while (std::getline(manifest, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = Split(line, '\t');
    if (fields.size() < 2) {
      return Status::Corruption("bad MANIFEST line " +
                                std::to_string(line_no) + " in '" + dir +
                                "'");
    }
    std::ifstream in(fs::path(dir) / std::string(fields[0]));
    if (!in) {
      return Status::Corruption("missing document file '" +
                                std::string(fields[0]) + "' in '" + dir +
                                "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::map<std::string, std::string> metadata;
    if (fields.size() >= 3 && !fields[2].empty()) {
      for (std::string_view pair : SplitSkipEmpty(fields[2], ';')) {
        size_t eq = pair.find('=');
        if (eq == std::string_view::npos) {
          return Status::Corruption("bad metadata on MANIFEST line " +
                                    std::to_string(line_no));
        }
        metadata[UnescapeMeta(pair.substr(0, eq))] =
            UnescapeMeta(pair.substr(eq + 1));
      }
    }
    doc_names[std::string(fields[0])] = std::string(fields[1]);
    PARTIX_RETURN_IF_ERROR(db.StoreSerializedWithMetadata(
        collection, std::string(fields[1]), buffer.str(),
        std::move(metadata)));
  }
  if (expected_labels.empty()) {
    // Pre-label exports carry no STRUCT sidecar, so the label
    // verification below cannot run. That used to be silent — an
    // operator auditing integrity coverage had no way to tell "verified
    // clean" from "nothing to verify against". Count and say so once
    // per import instead.
    static telemetry::Counter* skipped =
        telemetry::MetricsRegistry::Global().GetCounter(
            "partix_struct_verify_skipped_total");
    skipped->Add();
    std::fprintf(stderr,
                 "partix: import of '%s' from '%s' has no STRUCT sidecar; "
                 "structural-label verification skipped\n",
                 collection.c_str(), dir.c_str());
  } else {
    // Re-derive labels from the imported documents (AllDocuments parses
    // through the LRU cache, which the first queries would fill anyway)
    // and compare against what the exporter recorded.
    std::map<std::string, const StructEntry*> by_doc_name;
    for (const auto& [file, entry] : expected_labels) {
      auto it = doc_names.find(file);
      if (it == doc_names.end()) {
        return Status::Corruption("STRUCT entry for '" + file +
                                  "' has no MANIFEST line in '" + dir + "'");
      }
      by_doc_name[it->second] = &entry;
    }
    PARTIX_ASSIGN_OR_RETURN(std::vector<xml::DocumentPtr> docs,
                            db.AllDocuments(collection));
    for (const xml::DocumentPtr& doc : docs) {
      auto it = by_doc_name.find(doc->doc_name());
      if (it == by_doc_name.end()) continue;
      const StructEntry& want = *it->second;
      uint32_t max_level = 0;
      for (xml::NodeId n = 0; n < doc->node_count(); ++n) {
        max_level = std::max(max_level, doc->label(n).level);
      }
      if (doc->node_count() != want.node_count ||
          max_level != want.max_level ||
          StructuralLabelChecksum(*doc) != want.checksum) {
        return Status::Corruption(
            "structural labels of '" + doc->doc_name() + "' in '" + dir +
            "' do not match STRUCT: the exported and re-parsed label "
            "streams diverge");
      }
    }
  }
  return Status::Ok();
}

}  // namespace partix::xdb
