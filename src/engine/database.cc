#include "engine/database.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_set>

#include "common/clock.h"
#include "common/strings.h"
#include "engine/planner.h"
#include "telemetry/metrics.h"
#include "xml/parser.h"
#include "xquery/compiled_query.h"
#include "xquery/evaluator.h"

namespace partix::xdb {

namespace {

/// Engine-side compile/plan-cache counters, process-wide across every
/// Database instance (per-query figures stay on QueryMetrics; per-engine
/// exact counts on Database::plan_cache_stats()).
struct EngineTelemetry {
  telemetry::Counter* plan_cache_hits;
  telemetry::Counter* plan_cache_misses;
  telemetry::Counter* plan_cache_evictions;
  telemetry::Histogram* compile_ms;

  static const EngineTelemetry& Get() {
    static const EngineTelemetry t = [] {
      auto& registry = telemetry::MetricsRegistry::Global();
      EngineTelemetry out;
      out.plan_cache_hits =
          registry.GetCounter("partix_plan_cache_hits_total");
      out.plan_cache_misses =
          registry.GetCounter("partix_plan_cache_misses_total");
      out.plan_cache_evictions =
          registry.GetCounter("partix_plan_cache_evictions_total");
      out.compile_ms = registry.GetHistogram("xdb_compile_ms");
      return out;
    }();
    return t;
  }
};

/// Resolves collection() calls against the database with planner-derived
/// candidate documents, accumulating the store activity (parses, cache
/// hits, evictions) this one query caused — attribution is per call via
/// DocumentStore::Get's delta parameter, so concurrent queries on the
/// same store never race over shared counters.
///
/// Thread-safe: morsel workers may Resolve concurrently (the candidate
/// and store maps are immutable after construction; delta accumulation
/// takes a private mutex).
class PlannedResolver : public xquery::CollectionResolver {
 public:
  /// `candidates`: per-collection pruned slot lists (absent = error: the
  /// planner sees every call site, so every resolvable name is present).
  PlannedResolver(
      std::map<std::string, std::vector<storage::DocSlot>> candidates,
      std::map<std::string, storage::DocumentStore*> stores)
      : candidates_(std::move(candidates)), stores_(std::move(stores)) {}

  Result<std::vector<xml::DocumentPtr>> Resolve(
      const std::string& name) override {
    auto store_it = stores_.find(name);
    if (store_it == stores_.end()) {
      return Status::NotFound("collection '" + name + "' does not exist");
    }
    storage::DocumentStore* store = store_it->second;
    storage::StoreMetrics delta;
    std::vector<xml::DocumentPtr> docs;
    Status status = Status::Ok();
    auto cand_it = candidates_.find(name);
    if (cand_it == candidates_.end()) {
      // Planner did not see this call site (e.g. dynamic name): full scan.
      docs.reserve(store->size());
      for (storage::DocSlot slot = 0; slot < store->size(); ++slot) {
        Result<xml::DocumentPtr> doc = store->Get(slot, &delta);
        if (!doc.ok()) {
          status = doc.status();
          break;
        }
        docs.push_back(std::move(*doc));
      }
    } else {
      docs.reserve(cand_it->second.size());
      for (storage::DocSlot slot : cand_it->second) {
        Result<xml::DocumentPtr> doc = store->Get(slot, &delta);
        if (!doc.ok()) {
          status = doc.status();
          break;
        }
        docs.push_back(std::move(*doc));
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      deltas_[name].Merge(delta);
    }
    PARTIX_RETURN_IF_ERROR(status);
    return docs;
  }

  /// The store-activity delta attributed to `name` by this query's
  /// Resolve calls (zero metrics if it was never resolved). Read after
  /// evaluation completes.
  storage::StoreMetrics DeltaFor(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = deltas_.find(name);
    return it == deltas_.end() ? storage::StoreMetrics() : it->second;
  }

 private:
  std::map<std::string, std::vector<storage::DocSlot>> candidates_;
  std::map<std::string, storage::DocumentStore*> stores_;
  mutable std::mutex mu_;
  std::map<std::string, storage::StoreMetrics> deltas_;
};

}  // namespace

Database::Database(DatabaseOptions options)
    : options_(options),
      pool_(std::make_shared<xml::NamePool>()),
      plan_cache_(options.plan_cache_capacity,
                  options.plan_cache_capacity_bytes) {
  if (options_.memory_budget_bytes > 0) {
    governor_ = std::make_unique<memory::MemoryGovernor>(
        options_.memory_budget_bytes);
    plan_cache_.AttachGovernor(governor_.get());
  }
}

Status Database::CreateCollection(const std::string& name,
                                  CollectionMeta meta) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return CreateCollectionLocked(name, std::move(meta));
}

Status Database::CreateCollectionLocked(const std::string& name,
                                        CollectionMeta meta) {
  // try_emplace constructs the state in place: CollectionState holds a
  // mutex and cannot be moved into the map after the fact.
  auto [it, inserted] = collections_.try_emplace(name);
  if (!inserted) {
    return Status::AlreadyExists("collection '" + name + "' already exists");
  }
  CollectionState& state = it->second;
  state.meta = std::move(meta);
  state.store = std::make_unique<storage::DocumentStore>(
      pool_, options_.cache_capacity_bytes);
  if (governor_ != nullptr) state.store->AttachGovernor(governor_.get());
  InvalidatePlans();
  return Status::Ok();
}

Status Database::DropCollection(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (collections_.erase(name) == 0) {
    return Status::NotFound("collection '" + name + "' does not exist");
  }
  InvalidatePlans();
  return Status::Ok();
}

void Database::InvalidatePlans() {
  const size_t dropped = plan_cache_.Clear();
  if (dropped > 0) {
    EngineTelemetry::Get().plan_cache_evictions->Add(dropped);
  }
}

bool Database::HasCollection(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return collections_.count(name) != 0;
}

std::vector<std::string> Database::CollectionNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(collections_.size());
  for (const auto& [name, state] : collections_) out.push_back(name);
  return out;
}

Result<Database::CollectionState*> Database::GetState(
    const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("collection '" + name + "' does not exist");
  }
  return &it->second;
}

Result<const Database::CollectionState*> Database::GetState(
    const std::string& name) const {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("collection '" + name + "' does not exist");
  }
  return &it->second;
}

Status Database::IndexDocument(CollectionState* state, storage::DocSlot slot,
                               const xml::Document& doc) {
  if (options_.enable_element_index) state->element_index.AddDocument(slot, doc);
  if (options_.enable_text_index) state->text_index.AddDocument(slot, doc);
  if (options_.enable_value_index) state->value_index.AddDocument(slot, doc);
  if (options_.enable_structural_index) {
    state->structural_index.AddDocument(slot, doc);
  }
  state->stats.AddDocument(doc, state->store->SerializedSize(slot));
  return Status::Ok();
}

Status Database::StoreDocument(const std::string& collection,
                               const xml::Document& doc) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return StoreDocumentLocked(collection, doc);
}

Status Database::StoreDocumentLocked(const std::string& collection,
                                     const xml::Document& doc) {
  PARTIX_ASSIGN_OR_RETURN(CollectionState * state, GetState(collection));
  if (state->meta.validate_on_store && state->meta.schema != nullptr) {
    xml::Collection probe("", state->meta.schema, state->meta.root_path,
                          state->meta.kind);
    PARTIX_RETURN_IF_ERROR(
        state->meta.schema->Validate(doc, probe.RootType()));
  }
  PARTIX_ASSIGN_OR_RETURN(storage::DocSlot slot, state->store->Put(doc));
  return IndexDocument(state, slot, doc);
}

Status Database::StoreSerialized(const std::string& collection,
                                 std::string doc_name, std::string xml) {
  return StoreSerializedWithMetadata(collection, std::move(doc_name),
                                     std::move(xml), {});
}

Status Database::StoreSerializedWithMetadata(
    const std::string& collection, std::string doc_name, std::string xml,
    std::map<std::string, std::string> metadata) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  PARTIX_ASSIGN_OR_RETURN(CollectionState * state, GetState(collection));
  PARTIX_ASSIGN_OR_RETURN(std::shared_ptr<xml::Document> doc,
                          xml::ParseXml(pool_, doc_name, xml));
  if (state->meta.validate_on_store && state->meta.schema != nullptr) {
    xml::Collection probe("", state->meta.schema, state->meta.root_path,
                          state->meta.kind);
    PARTIX_RETURN_IF_ERROR(
        state->meta.schema->Validate(*doc, probe.RootType()));
  }
  PARTIX_ASSIGN_OR_RETURN(
      storage::DocSlot slot,
      state->store->PutSerialized(std::move(doc_name), std::move(xml),
                                  std::move(metadata)));
  return IndexDocument(state, slot, *doc);
}

Status Database::StoreCollection(const xml::Collection& collection) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (collections_.count(collection.name()) == 0) {
    CollectionMeta meta;
    meta.schema = collection.schema();
    meta.root_path = collection.root_path();
    meta.kind = collection.kind();
    PARTIX_RETURN_IF_ERROR(CreateCollectionLocked(collection.name(), meta));
  }
  for (const xml::DocumentPtr& doc : collection.docs()) {
    PARTIX_RETURN_IF_ERROR(StoreDocumentLocked(collection.name(), *doc));
  }
  return Status::Ok();
}

Result<std::vector<xml::DocumentPtr>> Database::AllDocuments(
    const std::string& collection) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  PARTIX_ASSIGN_OR_RETURN(const CollectionState* state,
                          GetState(collection));
  std::vector<xml::DocumentPtr> docs;
  docs.reserve(state->store->size());
  for (storage::DocSlot slot = 0; slot < state->store->size(); ++slot) {
    PARTIX_ASSIGN_OR_RETURN(xml::DocumentPtr doc, state->store->Get(slot));
    docs.push_back(std::move(doc));
  }
  return docs;
}

Result<const storage::CollectionStats*> Database::Stats(
    const std::string& collection) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  PARTIX_ASSIGN_OR_RETURN(const CollectionState* state,
                          GetState(collection));
  return &state->stats;
}

Result<const CollectionMeta*> Database::Meta(
    const std::string& collection) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  PARTIX_ASSIGN_OR_RETURN(const CollectionState* state,
                          GetState(collection));
  return &state->meta;
}

Result<size_t> Database::DocumentCount(const std::string& collection) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  PARTIX_ASSIGN_OR_RETURN(const CollectionState* state,
                          GetState(collection));
  return state->store->size();
}

Result<uint64_t> Database::SerializedBytes(
    const std::string& collection) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  PARTIX_ASSIGN_OR_RETURN(const CollectionState* state,
                          GetState(collection));
  return state->store->total_serialized_bytes();
}

namespace {

/// Store slots in document-name order, so digests and exports are
/// independent of insertion order (replicas repaired doc-by-doc must
/// compare equal to replicas published in one pass).
std::vector<storage::DocSlot> SlotsByName(const storage::DocumentStore& s) {
  std::vector<storage::DocSlot> slots(s.size());
  for (storage::DocSlot i = 0; i < s.size(); ++i) slots[i] = i;
  std::sort(slots.begin(), slots.end(),
            [&s](storage::DocSlot a, storage::DocSlot b) {
              return s.DocName(a) < s.DocName(b);
            });
  return slots;
}

}  // namespace

Result<uint64_t> Database::CollectionContentDigest(
    const std::string& collection) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  PARTIX_ASSIGN_OR_RETURN(const CollectionState* state,
                          GetState(collection));
  const storage::DocumentStore& store = *state->store;
  uint64_t h = Fnv1a64("");  // offset basis
  for (storage::DocSlot slot : SlotsByName(store)) {
    h = Fnv1a64(store.DocName(slot), h);
    h = Fnv1a64(std::string_view("\0", 1), h);
    h = Fnv1a64(store.SerializedXml(slot), h);
    h = Fnv1a64(std::string_view("\0", 1), h);
  }
  return h;
}

Result<std::vector<StoredDoc>> Database::ExportStoredDocs(
    const std::string& collection) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  PARTIX_ASSIGN_OR_RETURN(const CollectionState* state,
                          GetState(collection));
  const storage::DocumentStore& store = *state->store;
  std::vector<StoredDoc> out;
  out.reserve(store.size());
  for (storage::DocSlot slot : SlotsByName(store)) {
    out.push_back(StoredDoc{store.DocName(slot), store.SerializedXml(slot),
                            store.Metadata(slot)});
  }
  return out;
}

Status Database::CorruptStoredDocumentText(const std::string& collection,
                                           size_t doc_index, uint64_t pick) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  PARTIX_ASSIGN_OR_RETURN(CollectionState* state, GetState(collection));
  storage::DocumentStore& store = *state->store;
  if (doc_index >= store.size()) {
    return Status::OutOfRange("document index " + std::to_string(doc_index) +
                              " out of range (collection '" + collection +
                              "' holds " + std::to_string(store.size()) +
                              " document(s))");
  }
  const storage::DocSlot slot = SlotsByName(store)[doc_index];
  std::string xml = store.SerializedXml(slot);
  if (!CorruptXmlText(&xml, pick)) {
    return Status::FailedPrecondition("document '" + store.DocName(slot) +
                                      "' has no text content to corrupt");
  }
  store.ReplaceSerialized(slot, std::move(xml));
  return Status::Ok();
}

Result<PrepareOutcome> Database::Prepare(const std::string& query) const {
  if (PreparedQueryPtr cached = plan_cache_.Lookup(query)) {
    EngineTelemetry::Get().plan_cache_hits->Add();
    PrepareOutcome out;
    out.plan = std::move(cached);
    out.cache_hit = true;
    return out;
  }
  Stopwatch watch;
  PARTIX_ASSIGN_OR_RETURN(xquery::CompiledQueryPtr compiled,
                          xquery::CompiledQuery::Compile(query));
  auto plan = std::make_shared<PreparedQuery>();
  plan->plans = AnalyzeQuery(compiled->ast());
  plan->compiled = std::move(compiled);
  plan->compile_ms = watch.ElapsedMillis();
  return FinishPrepare(std::move(plan));
}

Result<PrepareOutcome> Database::Prepare(
    const xquery::CompiledQueryPtr& compiled) const {
  if (compiled == nullptr) {
    return Status::InvalidArgument("Prepare: null compiled query");
  }
  if (PreparedQueryPtr cached = plan_cache_.Lookup(compiled->text())) {
    EngineTelemetry::Get().plan_cache_hits->Add();
    PrepareOutcome out;
    out.plan = std::move(cached);
    out.cache_hit = true;
    return out;
  }
  Stopwatch watch;
  auto plan = std::make_shared<PreparedQuery>();
  plan->compiled = compiled;
  plan->plans = AnalyzeQuery(compiled->ast());
  plan->compile_ms = watch.ElapsedMillis();
  return FinishPrepare(std::move(plan));
}

PrepareOutcome Database::FinishPrepare(
    std::shared_ptr<PreparedQuery> plan) const {
  const EngineTelemetry& telemetry = EngineTelemetry::Get();
  telemetry.plan_cache_misses->Add();
  telemetry.compile_ms->Observe(plan->compile_ms);
  PrepareOutcome out;
  out.compile_ms = plan->compile_ms;
  out.plan = std::move(plan);
  const size_t evicted =
      plan_cache_.Insert(out.plan->compiled->text(), out.plan);
  if (evicted > 0) telemetry.plan_cache_evictions->Add(evicted);
  return out;
}

Result<QueryResult> Database::Execute(const std::string& query,
                                      const ExecParams& exec) const {
  Stopwatch watch;
  // Prepare touches only the internally-locked plan cache, so it runs
  // outside mu_; the shared lock is taken once for the execution body
  // (no recursive shared acquisition — a writer waiting between two
  // shared locks on one thread would deadlock).
  PARTIX_ASSIGN_OR_RETURN(PrepareOutcome prepared, Prepare(query));
  std::shared_lock<std::shared_mutex> lock(mu_);
  PARTIX_ASSIGN_OR_RETURN(QueryResult out,
                          ExecutePreparedLocked(*prepared.plan, exec));
  lock.unlock();
  out.metrics.compile_ms = prepared.compile_ms;
  out.metrics.plan_cache_hits = prepared.cache_hit ? 1 : 0;
  out.metrics.plan_cache_misses = prepared.cache_hit ? 0 : 1;
  out.metrics.plan_cache_bytes = plan_cache_.total_bytes();
  // elapsed_ms spans prepare + execution, as it always did; on a cache
  // hit the compile component is simply gone.
  out.metrics.elapsed_ms = watch.ElapsedMillis();
  return out;
}

Result<QueryResult> Database::ExecutePrepared(const PreparedQuery& prepared,
                                              const ExecParams& exec) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return ExecutePreparedLocked(prepared, exec);
}

void Database::PlanCandidates(
    const std::map<std::string, CollectionPlan>& plans,
    std::map<std::string, std::vector<storage::DocSlot>>* candidates_out,
    std::map<std::string, storage::DocumentStore*>* stores,
    QueryMetrics* metrics_out) const {
  // Plan: compute candidate documents per referenced collection. This
  // part is data-dependent (index postings change as documents are
  // stored), so it stays at execution time; the parse and the static
  // site-constraint analysis live in the prepared plan. Index lookups are
  // const reads — the shared lock excludes the (exclusive) writers.
  std::map<std::string, std::vector<storage::DocSlot>>& candidates =
      *candidates_out;
  QueryMetrics& metrics = *metrics_out;

  for (const auto& [name, state] : collections_) {
    (*stores)[name] = state.store.get();
  }

  for (const auto& [name, plan] : plans) {
    auto it = collections_.find(name);
    if (it == collections_.end()) continue;  // resolver will report
    const CollectionState& state = it->second;
    const size_t total = state.store->size();
    metrics.docs_in_collections += total;

    std::unordered_set<storage::DocSlot> keep;
    bool all = false;
    for (const SiteConstraints& site : plan.sites) {
      if (site.unconstrained) {
        all = true;
        break;
      }
      // Start with the full range; intersect index postings.
      storage::PostingList current;
      bool initialized = false;
      bool dead = false;
      auto intersect = [&](const storage::PostingList* postings) {
        if (postings == nullptr) {
          dead = true;
          return;
        }
        current = initialized ? storage::IntersectPostings(current, *postings)
                              : *postings;
        initialized = true;
        if (current.empty()) dead = true;
      };
      if (options_.enable_element_index) {
        for (const std::string& elem : site.required_elements) {
          intersect(state.element_index.Lookup(elem));
          if (dead) break;
        }
      }
      if (!dead && options_.enable_structural_index) {
        // Level-constrained spine pruning: strictly stronger than the
        // name-presence check above for child-only prefixes (an `Item`
        // nested at the wrong depth no longer keeps its document alive).
        for (const SpineLevel& spine : site.spine_levels) {
          storage::PostingList list = state.structural_index.LookupWithLevel(
              spine.name, spine.min_level, spine.exact_level);
          intersect(&list);
          if (dead) break;
        }
      }
      if (!dead && options_.enable_text_index &&
          options_.text_index_accelerates_contains) {
        for (const std::string& needle : site.contains_needles) {
          std::optional<storage::PostingList> c =
              state.text_index.CandidatesForContains(needle);
          if (c) {
            storage::PostingList list = std::move(*c);
            intersect(&list);
          }
          if (dead) break;
        }
      }
      if (!dead && options_.enable_value_index) {
        for (const auto& [elem, value] : site.value_equals) {
          if (value.size() > storage::ValueIndex::kMaxValueLength) continue;
          intersect(state.value_index.Lookup(elem, value));
          if (dead) break;
        }
      }
      if (dead) continue;  // this site matches no documents
      if (!initialized) {
        // No usable constraint at this site.
        all = true;
        break;
      }
      keep.insert(current.begin(), current.end());
    }

    std::vector<storage::DocSlot>& slots = candidates[name];
    if (all) {
      slots.resize(total);
      for (size_t i = 0; i < total; ++i) {
        slots[i] = static_cast<storage::DocSlot>(i);
      }
    } else {
      slots.assign(keep.begin(), keep.end());
      std::sort(slots.begin(), slots.end());
    }
    metrics.docs_considered += slots.size();
  }
}

void Database::FoldExecutionStats(
    const std::map<std::string, CollectionPlan>& plans,
    const std::function<storage::StoreMetrics(const std::string&)>& delta_for,
    const xquery::EvalStats& eval_stats, QueryMetrics* metrics_out) const {
  QueryMetrics& metrics = *metrics_out;
  // Collect metrics: fold each collection's access delta (attributed to
  // exactly this query by the resolver) into its stats — the
  // per-fragment access counts the fragmentation advisor and
  // EXPERIMENTS.md's SD-vs-MD cost story consume.
  for (const auto& [name, plan] : plans) {
    auto it = collections_.find(name);
    if (it == collections_.end()) continue;
    const storage::StoreMetrics delta = delta_for(name);
    metrics.docs_parsed += delta.parses;
    metrics.bytes_parsed += delta.bytes_parsed;
    metrics.cache_hits += delta.cache_hits;
    std::lock_guard<std::mutex> stats_lock(it->second.stats_mu);
    it->second.stats.RecordAccess(delta);
  }
  metrics.nodes_visited = eval_stats.nodes_visited;
  metrics.index_range_scans = eval_stats.index_range_scans;
  metrics.index_range_hits = eval_stats.index_range_hits;
  if (metrics.index_range_scans > 0) {
    // Evaluator-side label-range scans are structural-index probes too;
    // fold them into the same process-wide counters the planner-side
    // lookups use. Morsel-chunk stats merge in chunk order before this
    // point, so the counts equal a single-threaded run's exactly.
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.GetCounter("partix_structural_index_probes_total")
        ->Add(metrics.index_range_scans);
    registry.GetCounter("partix_structural_index_hits_total")
        ->Add(metrics.index_range_hits);
  }
}

Result<QueryResult> Database::ExecutePreparedLocked(
    const PreparedQuery& prepared, const ExecParams& exec) const {
  if (prepared.compiled == nullptr) {
    return Status::InvalidArgument("ExecutePrepared: plan has no query");
  }
  Stopwatch watch;
  const std::map<std::string, CollectionPlan>& plans = prepared.plans;

  std::map<std::string, std::vector<storage::DocSlot>> candidates;
  std::map<std::string, storage::DocumentStore*> stores;
  QueryMetrics metrics;
  PlanCandidates(plans, &candidates, &stores, &metrics);

  // Evaluate.
  PlannedResolver resolver(std::move(candidates), std::move(stores));
  xquery::Evaluator evaluator(&resolver, pool_);
  evaluator.set_use_structural_index(options_.enable_structural_index);
  if (exec.morsel_parallelism > 1 && exec.morsel_pool != nullptr) {
    evaluator.set_morsel_parallelism(exec.morsel_parallelism,
                                     exec.morsel_pool);
  }
  Result<xquery::Sequence> result = evaluator.Eval(prepared.compiled->ast());
  if (!result.ok()) return result.status();

  FoldExecutionStats(
      plans,
      [&resolver](const std::string& name) { return resolver.DeltaFor(name); },
      evaluator.stats(), &metrics);

  QueryResult out;
  out.items = std::move(*result);
  out.serialized = xquery::SerializeSequence(out.items);
  metrics.result_items = out.items.size();
  metrics.result_bytes = out.serialized.size();
  metrics.plan_cache_bytes = plan_cache_.total_bytes();
  metrics.elapsed_ms = watch.ElapsedMillis();
  out.metrics = metrics;
  return out;
}

// ---------------------------------------------------------------------------
// Streaming execution: ResultCursor
// ---------------------------------------------------------------------------

/// Everything one open stream owns, in destruction order: the evaluator
/// stream and resolver die before the shared lock releases. Defined here
/// so it can hold the file-local PlannedResolver.
struct ResultCursor::State {
  const Database* db = nullptr;
  /// Held from open to destruction; DDL (exclusive) waits for it.
  std::shared_lock<std::shared_mutex> lock;
  /// Keeps an internally-prepared plan alive (null when the caller owns
  /// the plan, as with ExecutePreparedStream).
  PreparedQueryPtr plan_keepalive;
  const PreparedQuery* plan = nullptr;
  std::unique_ptr<PlannedResolver> resolver;
  std::unique_ptr<xquery::Evaluator> evaluator;
  xquery::EvalStreamPtr stream;
  /// Carries the '\n'-separator state across blocks so block
  /// concatenation equals SerializeSequence of the whole result.
  xquery::SequenceSerializer serializer;
  /// Items produced by the evaluator stream but not yet emitted.
  xquery::Sequence pending;
  size_t pending_pos = 0;
  size_t block_items = 256;
  QueryMetrics metrics;
  bool done = false;
};

ResultCursor::ResultCursor(std::unique_ptr<State> state)
    : state_(std::move(state)) {}

ResultCursor::~ResultCursor() = default;

const QueryMetrics& ResultCursor::metrics() const { return state_->metrics; }

Result<bool> ResultCursor::Next(ResultBlock* block) {
  State& st = *state_;
  block->items.clear();
  block->serialized.clear();
  block->digest = 0;
  if (st.done) return false;
  Stopwatch watch;
  // Elapsed accumulates over open + every Next, so the drained cursor's
  // metrics mirror the materialized elapsed (engine time actually spent).
  Status status = Status::Ok();
  while (block->items.size() < st.block_items) {
    if (st.pending_pos >= st.pending.size()) {
      st.pending.clear();
      st.pending_pos = 0;
      Result<bool> more = st.stream->Next(&st.pending);
      if (!more.ok()) {
        st.done = true;
        status = more.status();
        break;
      }
      if (!*more) break;  // evaluator drained
    }
    while (st.pending_pos < st.pending.size() &&
           block->items.size() < st.block_items) {
      xquery::Item& item = st.pending[st.pending_pos++];
      st.serializer.Append(item, &block->serialized);
      block->items.push_back(std::move(item));
    }
  }
  if (!status.ok()) {
    st.metrics.elapsed_ms += watch.ElapsedMillis();
    return status;
  }
  if (block->items.empty()) {
    // Clean end of stream: fold the per-query attribution under the
    // still-held shared lock (the same fold the materialized path does).
    st.done = true;
    st.db->FoldExecutionStats(
        st.plan->plans,
        [&st](const std::string& name) { return st.resolver->DeltaFor(name); },
        st.stream->stats(), &st.metrics);
    st.metrics.plan_cache_bytes = st.db->plan_cache_.total_bytes();
    st.metrics.elapsed_ms += watch.ElapsedMillis();
    return false;
  }
  st.metrics.result_items += block->items.size();
  st.metrics.result_bytes += block->serialized.size();
  st.metrics.elapsed_ms += watch.ElapsedMillis();
  return true;
}

Result<ResultCursorPtr> Database::OpenCursor(PreparedQueryPtr keepalive,
                                             const PreparedQuery* prepared,
                                             const ExecParams& exec) const {
  if (prepared->compiled == nullptr) {
    return Status::InvalidArgument("ExecutePrepared: plan has no query");
  }
  auto st = std::make_unique<ResultCursor::State>();
  st->db = this;
  st->lock = std::shared_lock<std::shared_mutex>(mu_);
  Stopwatch watch;
  st->plan_keepalive = std::move(keepalive);
  st->plan = prepared;
  std::map<std::string, std::vector<storage::DocSlot>> candidates;
  std::map<std::string, storage::DocumentStore*> stores;
  PlanCandidates(prepared->plans, &candidates, &stores, &st->metrics);
  st->resolver = std::make_unique<PlannedResolver>(std::move(candidates),
                                                   std::move(stores));
  st->evaluator = std::make_unique<xquery::Evaluator>(st->resolver.get(),
                                                      pool_);
  st->evaluator->set_use_structural_index(options_.enable_structural_index);
  if (exec.morsel_parallelism > 1 && exec.morsel_pool != nullptr) {
    st->evaluator->set_morsel_parallelism(exec.morsel_parallelism,
                                          exec.morsel_pool);
  }
  Result<xquery::EvalStreamPtr> stream =
      st->evaluator->OpenStream(prepared->compiled->ast());
  if (!stream.ok()) return stream.status();  // st's destructor unlocks
  st->stream = std::move(*stream);
  if (exec.stream_block_items > 0) st->block_items = exec.stream_block_items;
  st->metrics.elapsed_ms += watch.ElapsedMillis();
  return ResultCursorPtr(new ResultCursor(std::move(st)));
}

Result<ResultCursorPtr> Database::ExecuteStream(const std::string& query,
                                                const ExecParams& exec) const {
  // Like Execute: Prepare outside mu_ (plan cache is internally locked),
  // then one shared acquisition for the cursor's whole life.
  PARTIX_ASSIGN_OR_RETURN(PrepareOutcome prepared, Prepare(query));
  PreparedQueryPtr plan = prepared.plan;
  const PreparedQuery* raw = plan.get();
  PARTIX_ASSIGN_OR_RETURN(ResultCursorPtr cursor,
                          OpenCursor(std::move(plan), raw, exec));
  cursor->state_->metrics.compile_ms = prepared.compile_ms;
  cursor->state_->metrics.plan_cache_hits = prepared.cache_hit ? 1 : 0;
  cursor->state_->metrics.plan_cache_misses = prepared.cache_hit ? 0 : 1;
  return cursor;
}

Result<ResultCursorPtr> Database::ExecutePreparedStream(
    const PreparedQuery& prepared, const ExecParams& exec) const {
  return OpenCursor(nullptr, &prepared, exec);
}

void Database::DropCaches() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& [name, state] : collections_) state.store->DropCache();
}

}  // namespace partix::xdb
