#ifndef PARTIX_ENGINE_DATABASE_H_
#define PARTIX_ENGINE_DATABASE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/plan_cache.h"
#include "memory/governor.h"
#include "storage/document_store.h"
#include "storage/indexes.h"
#include "storage/stats.h"
#include "xml/collection.h"
#include "xml/document.h"
#include "xml/name_pool.h"
#include "xml/schema.h"
#include "xquery/evaluator.h"
#include "xquery/item.h"

namespace partix::xdb {

/// Engine construction options.
struct DatabaseOptions {
  /// Parsed-document cache budget per collection (0 disables caching).
  size_t cache_capacity_bytes = size_t{64} << 20;
  /// Structural index (element names), like eXist's automatic structural
  /// index.
  bool enable_element_index = true;
  /// Full-text index, like eXist's automatic full-text index.
  bool enable_text_index = true;
  /// Use the full-text index to prune fn:contains() scans. OFF by default
  /// for fidelity to the paper's substrate: eXist's fn:contains() is a
  /// plain substring function, not index-assisted (only its proprietary
  /// text operators used the index). Turning this on is the "modern
  /// engine" ablation.
  bool text_index_accelerates_contains = false;
  /// Exact-value index on simple-content elements. OFF by default: the
  /// paper configured no value indexes ("No other indexes were created").
  bool enable_value_index = false;
  /// Structural label index (XISS/R-style (pre, post, level) intervals,
  /// see docs/structural-index.md): prunes candidate documents by
  /// occurrence level and lets the evaluators answer descendant/child
  /// steps as label-range scans instead of tree walks. Results are
  /// byte-identical on or off; OFF is the navigational ablation measured
  /// by bench/structural_join.
  bool enable_structural_index = true;
  /// Prepared-plan LRU cache capacity in entries, keyed by query text and
  /// invalidated by collection DDL. 0 disables caching: every Prepare
  /// recompiles (the "cache off" ablation of bench/plan_cache_bench).
  size_t plan_cache_capacity = 128;
  /// Additional byte bound on the plan cache (summed per-plan byte
  /// estimates, see PlanCache::EstimatePlanBytes). 0 = entries-only.
  size_t plan_cache_capacity_bytes = 0;
  /// One per-node byte budget shared by the parse caches, the plan
  /// cache, and (through the middleware) in-flight result buffers. 0
  /// (default) disables governance: caches enforce only their own
  /// capacities. When set, the database owns a memory::MemoryGovernor,
  /// every cache charges it, and pressure evicts in priority order
  /// (parse caches first, plan cache next). Results are byte-identical
  /// with the governor on or off. See docs/memory.md.
  size_t memory_budget_bytes = 0;
};

/// Descriptive metadata of a collection (its schema binding).
struct CollectionMeta {
  xml::SchemaPtr schema;        // may be null (schemaless)
  std::string root_path;        // e.g. "/Store/Items/Item"
  xml::RepoKind kind = xml::RepoKind::kMultipleDocuments;
  /// Validate each stored document against the schema root type.
  bool validate_on_store = false;
};

/// Per-execution knobs, separate from the plan (the same prepared plan
/// runs with any ExecParams).
struct ExecParams {
  /// Intra-node morsel parallelism: collection-scale iterations inside
  /// one evaluation are split into up to this many chunks evaluated on
  /// `morsel_pool`. <= 1 (or a null pool) = sequential evaluation.
  /// Results are byte-identical either way (see
  /// docs/intra-node-parallelism.md).
  size_t morsel_parallelism = 1;
  /// The shared worker pool the chunks run on; must outlive the call.
  /// The middleware passes the same process-wide pool the scheduler
  /// admission-controls — never a private one (no second pool, no
  /// oversubscription).
  ThreadPool* morsel_pool = nullptr;
  /// Target items per ResultBlock on the streaming path
  /// (ExecuteStream/ExecutePreparedStream). 0 = the default (256).
  size_t stream_block_items = 0;
};

/// Execution counters for one query.
struct QueryMetrics {
  double elapsed_ms = 0.0;
  /// Parse + static-analysis cost paid by this call; 0 when the plan came
  /// from the plan cache or a caller-supplied prepared plan.
  double compile_ms = 0.0;
  /// Plan-cache accounting of this call: {1,0} on a hit, {0,1} on a miss,
  /// {0,0} when executed through a caller-supplied prepared plan (the
  /// cache was not consulted).
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  /// Estimated bytes held by this node's plan cache after the call (see
  /// PlanCache::total_bytes; surfaced per sub-query by ExplainAnalyze).
  uint64_t plan_cache_bytes = 0;
  uint64_t docs_in_collections = 0;  // total docs in referenced collections
  uint64_t docs_considered = 0;      // after index pruning
  uint64_t docs_parsed = 0;
  uint64_t bytes_parsed = 0;
  uint64_t cache_hits = 0;
  uint64_t nodes_visited = 0;
  /// Axis steps answered by structural label-range scans, and the matches
  /// they produced (0 when the structural index is disabled).
  uint64_t index_range_scans = 0;
  uint64_t index_range_hits = 0;
  uint64_t result_items = 0;
  uint64_t result_bytes = 0;
};

/// A query answer: the result sequence, its serialized form, and metrics.
struct QueryResult {
  xquery::Sequence items;
  std::string serialized;
  QueryMetrics metrics;
  /// End-to-end integrity: FNV-1a of `serialized`, computed where the
  /// result was produced (the driver stamps it before the response
  /// crosses the simulated wire). 0 = no digest attached; the executor
  /// verifies non-zero digests when integrity checking is enabled and
  /// treats a mismatch as a retryable corrupt response. See
  /// docs/fault-tolerance.md.
  uint64_t response_digest = 0;
};

/// One batch of a streamed query result. Blocks carry both forms the
/// consumers need: serialized bytes (what crosses the wire; block
/// serializations concatenate to exactly QueryResult::serialized) and the
/// items themselves (join composition reads the px-* reconstruction
/// metadata off the documents, not the bytes). Documents stay alive
/// through the items' shared_ptrs.
struct ResultBlock {
  xquery::Sequence items;
  std::string serialized;
  /// FNV-1a of `serialized`, stamped by the driver before the block
  /// crosses the simulated wire (0 = no digest). The executor verifies
  /// per block exactly like QueryResult::response_digest.
  uint64_t digest = 0;
};

class ResultCursor;
using ResultCursorPtr = std::unique_ptr<ResultCursor>;

/// One document as the store holds it: name, raw serialized bytes, and
/// out-of-band metadata. This is the unit of replica repair — copying a
/// fragment to another node ships exactly these triples, so the target's
/// stored bytes (and therefore its content digest) match the source.
struct StoredDoc {
  std::string name;
  std::string xml;
  std::map<std::string, std::string> metadata;
};

/// What Prepare() hands back: the (possibly cached) plan plus how it was
/// obtained. `compile_ms` is 0 exactly when `cache_hit` — a hit pays no
/// parse and no analysis.
struct PrepareOutcome {
  PreparedQueryPtr plan;
  bool cache_hit = false;
  double compile_ms = 0.0;
};

/// The XQuery-enabled XML database PartiX coordinates — the role eXist
/// plays in the paper. One Database instance is "one DBMS node" of the
/// distributed setting.
///
/// Documents live in per-collection stores in serialized form, are parsed
/// on demand through an LRU cache, and are indexed (structure, full text,
/// exact values) at store time. Queries are XQuery (see xquery/parser.h
/// for the subset); the planner prunes the documents each collection()
/// call must touch using the indexes.
///
/// Thread-safety: the read path is concurrent, the write path exclusive.
/// Execute/Prepare/ExecutePrepared and the read accessors are const and
/// may be called from any number of threads at once — queries take a
/// shared lock on the instance; the parse caches, plan cache, name pool,
/// and per-collection access stats they touch are internally
/// synchronized. DDL and loading (CreateCollection/DropCollection/
/// Store*/CorruptStoredDocumentText/DropCaches) take the exclusive lock
/// and therefore serialize against all in-flight queries. In the
/// distributed setting, middleware::LocalXdbDriver mirrors exactly this
/// split with its own reader-writer lock; cross-node parallelism remains
/// trivially safe because instances share nothing (each has its own
/// NamePool, stores, caches, and indexes).
class Database {
 public:
  explicit Database(DatabaseOptions options = DatabaseOptions());

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::shared_ptr<xml::NamePool>& pool() const { return pool_; }
  const DatabaseOptions& options() const { return options_; }

  // ---- DDL ----

  Status CreateCollection(const std::string& name,
                          CollectionMeta meta = CollectionMeta());
  Status DropCollection(const std::string& name);
  bool HasCollection(const std::string& name) const;
  std::vector<std::string> CollectionNames() const;

  // ---- Loading ----

  /// Stores (serializes + indexes) a document into a collection.
  Status StoreDocument(const std::string& collection,
                       const xml::Document& doc);

  /// Stores pre-serialized XML (parsed once, for indexing/validation).
  Status StoreSerialized(const std::string& collection, std::string doc_name,
                         std::string xml);

  /// Stores pre-serialized XML with out-of-band document metadata that the
  /// store persists and re-attaches on access.
  Status StoreSerializedWithMetadata(
      const std::string& collection, std::string doc_name, std::string xml,
      std::map<std::string, std::string> metadata);

  /// Loads every document of an in-memory Collection.
  Status StoreCollection(const xml::Collection& collection);

  // ---- Access ----

  /// All documents of a collection (parsing as needed).
  Result<std::vector<xml::DocumentPtr>> AllDocuments(
      const std::string& collection);

  Result<const storage::CollectionStats*> Stats(
      const std::string& collection) const;

  Result<const CollectionMeta*> Meta(const std::string& collection) const;

  /// Number of documents in a collection.
  Result<size_t> DocumentCount(const std::string& collection) const;

  /// Total serialized bytes of a collection.
  Result<uint64_t> SerializedBytes(const std::string& collection) const;

  /// Content digest of a collection: FNV-1a over the (name, serialized
  /// bytes) pairs of every stored document, in name order. Two replicas
  /// holding the same documents byte-for-byte produce the same digest
  /// regardless of store order — the anti-entropy scrubber compares this
  /// against the catalog's published digest to detect divergent copies.
  Result<uint64_t> CollectionContentDigest(const std::string& collection)
      const;

  /// Every stored document of a collection in name order, as raw
  /// (name, serialized XML, metadata) triples. No parsing happens; this
  /// is what replica repair copies between nodes.
  Result<std::vector<StoredDoc>> ExportStoredDocs(
      const std::string& collection) const;

  /// Fault-injection seam (tests, bench): flips one text character of the
  /// serialized bytes of the `doc_index`-th stored document, emulating
  /// silent storage corruption (bit rot). The parse cache entry for the
  /// document is dropped so subsequent reads see the corrupt bytes.
  /// Indexes are deliberately left stale, like real bit rot under an
  /// index built at store time.
  Status CorruptStoredDocumentText(const std::string& collection,
                                   size_t doc_index, uint64_t pick = 0);

  // ---- Query ----

  /// Executes an XQuery: Prepare (served from the plan cache when the
  /// exact text was prepared before and no DDL intervened) followed by
  /// ExecutePrepared. Metrics carry the compile cost actually paid and
  /// the cache hit/miss of this call. Concurrently callable.
  Result<QueryResult> Execute(const std::string& query,
                              const ExecParams& exec = ExecParams()) const;

  /// Compiles `query` into a shareable plan, or returns it from the plan
  /// cache. Parse failures are returned (never cached), so a malformed
  /// query fails identically on every submission. Concurrently callable
  /// (touches only the internally-locked plan cache, never the stores).
  Result<PrepareOutcome> Prepare(const std::string& query) const;

  /// Same, for a query the caller already compiled (e.g. the middleware's
  /// per-sub-query artifact): a cache miss runs static analysis only — no
  /// parse happens on this path.
  Result<PrepareOutcome> Prepare(const xquery::CompiledQueryPtr& compiled)
      const;

  /// Evaluates a prepared plan: computes the data-dependent candidate
  /// sets from the current indexes, evaluates, serializes. Pays no parse
  /// and no static analysis (`metrics.compile_ms == 0`). The plan may
  /// come from this engine, another engine, or PreparedQuery built by the
  /// caller. Concurrently callable; `exec` optionally enables intra-node
  /// morsel parallelism for this one evaluation.
  Result<QueryResult> ExecutePrepared(
      const PreparedQuery& prepared,
      const ExecParams& exec = ExecParams()) const;

  /// Streaming forms: instead of one materialized QueryResult, returns a
  /// pull-based cursor yielding ResultBlocks whose concatenation is
  /// byte-, item-, and metrics-identical to the materialized call. The
  /// cursor holds this database's shared lock for its whole life (DDL
  /// waits until every open cursor is destroyed), so create, drain, and
  /// destroy it on ONE thread — a shared_mutex must be released by the
  /// locking thread. ExecuteStream prepares internally; for
  /// ExecutePreparedStream the plan must outlive the cursor.
  Result<ResultCursorPtr> ExecuteStream(
      const std::string& query, const ExecParams& exec = ExecParams()) const;
  Result<ResultCursorPtr> ExecutePreparedStream(
      const PreparedQuery& prepared,
      const ExecParams& exec = ExecParams()) const;

  /// Plan-cache introspection (tests, benches, DDL-invalidation proofs).
  PlanCacheStats plan_cache_stats() const { return plan_cache_.stats(); }
  size_t plan_cache_size() const { return plan_cache_.size(); }
  size_t plan_cache_bytes() const { return plan_cache_.total_bytes(); }

  /// This node's memory governor, or nullptr when
  /// DatabaseOptions::memory_budget_bytes is 0. The governor itself is
  /// internally synchronized (concurrent Charge/Release are exact).
  memory::MemoryGovernor* governor() { return governor_.get(); }

  // ---- Cache control (benchmarks) ----

  /// Drops all parsed-document caches (serialized data stays), emulating a
  /// cold start.
  void DropCaches();

 private:
  struct CollectionState {
    CollectionMeta meta;
    std::unique_ptr<storage::DocumentStore> store;
    storage::ElementIndex element_index;
    storage::TextIndex text_index;
    storage::ValueIndex value_index;
    storage::StructuralIndex structural_index;
    /// Guarded by stats_mu for RecordAccess (concurrent shared-lock
    /// queries fold their access deltas in); AddDocument runs under the
    /// database's exclusive lock and needs no extra locking.
    mutable std::mutex stats_mu;
    mutable storage::CollectionStats stats;
  };

  // Both require mu_ held (shared suffices for the const overload).
  Result<CollectionState*> GetState(const std::string& name);
  Result<const CollectionState*> GetState(const std::string& name) const;

  // The *Locked helpers require mu_ held exclusively.
  Status CreateCollectionLocked(const std::string& name, CollectionMeta meta);
  Status StoreDocumentLocked(const std::string& collection,
                             const xml::Document& doc);
  Status IndexDocument(CollectionState* state, storage::DocSlot slot,
                       const xml::Document& doc);

  /// Caches a freshly-built plan and assembles its PrepareOutcome
  /// (miss-path tail shared by both Prepare overloads).
  PrepareOutcome FinishPrepare(std::shared_ptr<PreparedQuery> plan) const;

  /// Clears the plan cache after collection DDL (any cached plan may
  /// reference the changed collection).
  void InvalidatePlans();

  /// Execution body; requires mu_ held (shared).
  Result<QueryResult> ExecutePreparedLocked(const PreparedQuery& prepared,
                                            const ExecParams& exec) const;

  /// Data-dependent candidate planning (index-posting intersection into
  /// sorted per-collection slot lists); requires mu_ held (shared).
  /// Shared by the materialized and streaming paths.
  void PlanCandidates(
      const std::map<std::string, CollectionPlan>& plans,
      std::map<std::string, std::vector<storage::DocSlot>>* candidates,
      std::map<std::string, storage::DocumentStore*>* stores,
      QueryMetrics* metrics) const;

  /// Folds per-collection store-activity deltas into collection stats and
  /// evaluator counters into `metrics` + the process-wide structural-index
  /// counters; requires mu_ held (shared). `delta_for` returns the
  /// store-activity delta this query caused on one collection.
  void FoldExecutionStats(
      const std::map<std::string, CollectionPlan>& plans,
      const std::function<storage::StoreMetrics(const std::string&)>&
          delta_for,
      const xquery::EvalStats& eval_stats, QueryMetrics* metrics) const;

  /// Streaming open body shared by ExecuteStream/ExecutePreparedStream.
  /// `keepalive` (may be null) keeps an internally-prepared plan alive for
  /// the cursor's lifetime; `prepared` is the plan to run.
  Result<ResultCursorPtr> OpenCursor(PreparedQueryPtr keepalive,
                                     const PreparedQuery* prepared,
                                     const ExecParams& exec) const;

  friend class ResultCursor;

  DatabaseOptions options_;
  std::shared_ptr<xml::NamePool> pool_;
  /// Declared before the caches/stores it governs: consumers detach in
  /// their destructors, so the governor must be destroyed last.
  std::unique_ptr<memory::MemoryGovernor> governor_;
  /// Reader-writer split: queries and read accessors hold shared, DDL and
  /// loading hold exclusive. Guards the collections_ map structure and
  /// the index/meta/raw-byte content of every CollectionState (the store
  /// caches and stats have finer internal locks for the shared-path
  /// mutations queries perform).
  mutable std::shared_mutex mu_;
  std::map<std::string, CollectionState> collections_;
  /// Prepared plans keyed by query text; cleared by collection DDL.
  /// Internally thread-safe; mutable so the const query path can use it.
  mutable PlanCache plan_cache_;
};

/// A pull-based streamed query result, opened by Database::ExecuteStream
/// or ExecutePreparedStream. Yields fixed-size ResultBlocks whose
/// concatenated items/bytes equal the materialized QueryResult exactly;
/// metrics() is complete (elapsed, result counts, store/evaluator
/// attribution) once Next() has returned false.
///
/// Thread contract: NOT thread-safe, and lock-bound — the cursor holds
/// the database's shared lock from open to destruction, so it must be
/// created, drained, and destroyed on the same thread (shared_mutex
/// ownership is per-thread). Dropping a cursor early releases the lock
/// but skips the final stats fold, exactly like an errored materialized
/// execution.
class ResultCursor {
 public:
  ~ResultCursor();
  ResultCursor(const ResultCursor&) = delete;
  ResultCursor& operator=(const ResultCursor&) = delete;

  /// Produces the next block (up to ExecParams::stream_block_items
  /// items) into `*block`. Returns false at end of stream; an evaluation
  /// error ends the stream with that error.
  Result<bool> Next(ResultBlock* block);

  /// Metrics accumulated so far; complete after Next() returned false.
  const QueryMetrics& metrics() const;

 private:
  friend class Database;
  struct State;
  explicit ResultCursor(std::unique_ptr<State> state);

  std::unique_ptr<State> state_;
};

}  // namespace partix::xdb

#endif  // PARTIX_ENGINE_DATABASE_H_
