#include "engine/planner.h"

#include <optional>

namespace partix::xdb {

namespace {

using xquery::AxisStep;
using xquery::BinaryOp;
using xquery::ContextItem;
using xquery::ElementCtor;
using xquery::Expr;
using xquery::ExprPtr;
using xquery::FlworExpr;
using xquery::ForLetClause;
using xquery::FunctionCall;
using xquery::IfExpr;
using xquery::NumberLit;
using xquery::PathExpr;
using xquery::StringLit;
using xquery::UnaryMinus;
using xquery::VarRef;

/// Returns the collection name when `e` is collection("name")/doc("name").
std::optional<std::string> AsCollectionCall(const Expr& e) {
  if (!e.Is<FunctionCall>()) return std::nullopt;
  const auto& f = e.As<FunctionCall>();
  if (f.name != "collection" && f.name != "doc") return std::nullopt;
  if (f.args.size() != 1 || !f.args[0]->Is<StringLit>()) return std::nullopt;
  return f.args[0]->As<StringLit>().value;
}

/// Returns the literal string value when `e` is a string or number literal.
std::optional<std::string> AsLiteralString(const Expr& e) {
  if (e.Is<StringLit>()) return e.As<StringLit>().value;
  if (e.Is<NumberLit>()) {
    // Compare numbers through their canonical text form; the value index
    // stores raw document text, so only integers round-trip reliably.
    double v = e.As<NumberLit>().value;
    if (v == static_cast<int64_t>(v)) {
      return std::to_string(static_cast<int64_t>(v));
    }
  }
  return std::nullopt;
}

class Analyzer {
 public:
  std::map<std::string, CollectionPlan> Run(const Expr& root) {
    Walk(root);
    return std::move(plans_);
  }

 private:
  /// A relative path (rooted at the context item or a tracked variable):
  /// the names along its spine and its last step's name, when usable.
  struct RelPathInfo {
    std::vector<std::string> spine;
    std::string last_name;  // empty when wildcard/attribute-less
    bool last_is_simple = false;
  };

  /// Extracts spine info from `e` when it is a path over the context item
  /// or over a variable bound to `site_var_` (predicate/where usage).
  std::optional<RelPathInfo> RelativePath(const Expr& e,
                                          const std::string* var) {
    if (!e.Is<PathExpr>()) return std::nullopt;
    const auto& p = e.As<PathExpr>();
    if (p.source == nullptr) {
      // Absolute path inside a predicate: applies to the context document;
      // its names are still required elements of the same document.
    } else if (p.source->Is<ContextItem>()) {
      // Relative to the step context: fine.
    } else if (var != nullptr && p.source->Is<VarRef>() &&
               p.source->As<VarRef>().name == *var) {
      // Path over the tracked FLWOR variable.
    } else {
      return std::nullopt;
    }
    RelPathInfo info;
    for (const AxisStep& s : p.steps) {
      if (!s.step.wildcard) info.spine.push_back(s.step.name);
      // Nested step predicates inside predicate paths are not mined.
    }
    if (!p.steps.empty() && !p.steps.back().step.wildcard) {
      info.last_name = p.steps.back().step.name;
      info.last_is_simple = true;
    }
    return info;
  }

  /// Mines one conjunct of a predicate/where expression for constraints on
  /// the site. `var`, when non-null, is the FLWOR variable bound to the
  /// site.
  void MineConjunct(const Expr& e, SiteConstraints* site,
                    const std::string* var) {
    if (e.Is<BinaryOp>()) {
      const auto& b = e.As<BinaryOp>();
      if (b.op == BinaryOp::Op::kAnd) {
        MineConjunct(*b.lhs, site, var);
        MineConjunct(*b.rhs, site, var);
        return;
      }
      // Comparison: path op literal (either side).
      const bool is_cmp =
          b.op == BinaryOp::Op::kEq || b.op == BinaryOp::Op::kNe ||
          b.op == BinaryOp::Op::kLt || b.op == BinaryOp::Op::kLe ||
          b.op == BinaryOp::Op::kGt || b.op == BinaryOp::Op::kGe;
      if (!is_cmp) return;
      const Expr* path_side = nullptr;
      const Expr* lit_side = nullptr;
      if (b.lhs->Is<PathExpr>()) {
        path_side = b.lhs.get();
        lit_side = b.rhs.get();
      } else if (b.rhs->Is<PathExpr>()) {
        path_side = b.rhs.get();
        lit_side = b.lhs.get();
      } else {
        return;
      }
      std::optional<RelPathInfo> info = RelativePath(*path_side, var);
      if (!info) return;
      for (const std::string& name : info->spine) {
        site->required_elements.push_back(name);
      }
      if (b.op == BinaryOp::Op::kEq && info->last_is_simple) {
        std::optional<std::string> lit = AsLiteralString(*lit_side);
        if (lit) site->value_equals.emplace_back(info->last_name, *lit);
      }
      return;
    }
    if (e.Is<FunctionCall>()) {
      const auto& f = e.As<FunctionCall>();
      if ((f.name == "contains" || f.name == "starts-with") &&
          f.args.size() == 2) {
        std::optional<RelPathInfo> info = RelativePath(*f.args[0], var);
        std::optional<std::string> lit;
        if (f.args[1]->Is<StringLit>()) {
          lit = f.args[1]->As<StringLit>().value;
        }
        if (info) {
          for (const std::string& name : info->spine) {
            site->required_elements.push_back(name);
          }
          if (f.name == "contains" && lit) {
            site->contains_needles.push_back(*lit);
          }
        }
        return;
      }
      if (f.name == "exists" && f.args.size() == 1) {
        std::optional<RelPathInfo> info = RelativePath(*f.args[0], var);
        if (info) {
          for (const std::string& name : info->spine) {
            site->required_elements.push_back(name);
          }
        }
        return;
      }
      // not(), empty(), boolean() and friends: no sound positive
      // constraint.
      return;
    }
    if (e.Is<PathExpr>()) {
      // Bare existential path.
      std::optional<RelPathInfo> info = RelativePath(e, var);
      if (info) {
        for (const std::string& name : info->spine) {
          site->required_elements.push_back(name);
        }
      }
    }
  }

  /// Registers a collection call site rooted at `collection(...)` with the
  /// trailing `steps`; returns the site index.
  size_t AddSite(const std::string& collection,
                 const std::vector<AxisStep>& steps) {
    SiteConstraints site;
    uint32_t depth = 0;
    bool exact = true;
    for (const AxisStep& s : steps) {
      ++depth;
      if (s.step.axis == xpath::Axis::kDescendant) exact = false;
      site.step_strategies.push_back(xpath::StaticStepStrategy(s.step));
      if (!s.step.wildcard) {
        site.required_elements.push_back(s.step.name);
        site.spine_levels.push_back(SpineLevel{s.step.name, depth, exact});
      }
      for (const ExprPtr& pred : s.predicates) {
        MineConjunct(*pred, &site, nullptr);
        // Also walk the predicate generically to find nested collection
        // calls.
        Walk(*pred);
      }
    }
    plans_[collection].sites.push_back(std::move(site));
    return plans_[collection].sites.size() - 1;
  }

  /// Generic walk; recognizes collection-rooted paths and FLWORs.
  void Walk(const Expr& e) {
    if (e.Is<PathExpr>()) {
      const auto& p = e.As<PathExpr>();
      if (p.source != nullptr) {
        std::optional<std::string> coll = AsCollectionCall(*p.source);
        if (coll) {
          AddSite(*coll, p.steps);
          return;
        }
        Walk(*p.source);
      }
      for (const AxisStep& s : p.steps) {
        for (const ExprPtr& pred : s.predicates) Walk(*pred);
      }
      return;
    }
    if (e.Is<FunctionCall>()) {
      std::optional<std::string> coll = AsCollectionCall(e);
      if (coll) {
        // Bare collection("c") with no steps: unconstrained.
        SiteConstraints site;
        site.unconstrained = true;
        plans_[*coll].sites.push_back(std::move(site));
        return;
      }
      for (const ExprPtr& arg : e.As<FunctionCall>().args) Walk(*arg);
      return;
    }
    if (e.Is<FlworExpr>()) {
      WalkFlwor(e.As<FlworExpr>());
      return;
    }
    if (e.Is<BinaryOp>()) {
      Walk(*e.As<BinaryOp>().lhs);
      Walk(*e.As<BinaryOp>().rhs);
      return;
    }
    if (e.Is<UnaryMinus>()) {
      Walk(*e.As<UnaryMinus>().operand);
      return;
    }
    if (e.Is<ElementCtor>()) {
      for (const ExprPtr& c : e.As<ElementCtor>().content) Walk(*c);
      return;
    }
    if (e.Is<IfExpr>()) {
      const auto& i = e.As<IfExpr>();
      Walk(*i.cond);
      Walk(*i.then_branch);
      Walk(*i.else_branch);
      return;
    }
    if (e.Is<xquery::QuantifiedExpr>()) {
      const auto& q = e.As<xquery::QuantifiedExpr>();
      for (const xquery::ForLetClause& b : q.bindings) Walk(*b.expr);
      Walk(*q.satisfies);
      return;
    }
    // Literals, VarRef, ContextItem: nothing to do.
  }

  void WalkFlwor(const FlworExpr& flwor) {
    // Variables bound (via for) to a collection call site in this FLWOR:
    // var name -> (collection, site index).
    std::map<std::string, std::pair<std::string, size_t>> bound;
    for (const ForLetClause& clause : flwor.clauses) {
      const Expr& src = *clause.expr;
      bool handled = false;
      if (!clause.is_let) {
        if (src.Is<PathExpr>() && src.As<PathExpr>().source != nullptr) {
          std::optional<std::string> coll =
              AsCollectionCall(*src.As<PathExpr>().source);
          if (coll) {
            size_t site = AddSite(*coll, src.As<PathExpr>().steps);
            bound[clause.var] = {*coll, site};
            handled = true;
          }
        } else {
          std::optional<std::string> coll = AsCollectionCall(src);
          if (coll) {
            size_t site = AddSite(*coll, {});
            bound[clause.var] = {*coll, site};
            handled = true;
          }
        }
      }
      if (!handled) Walk(src);
    }
    if (flwor.where != nullptr) {
      // Mine the where clause once per bound variable, then walk it for
      // nested collection calls.
      for (const auto& [var, target] : bound) {
        SiteConstraints& site = plans_[target.first].sites[target.second];
        MineConjunct(*flwor.where, &site, &var);
      }
      Walk(*flwor.where);
    }
    Walk(*flwor.ret);
  }

  std::map<std::string, CollectionPlan> plans_;
};

}  // namespace

std::map<std::string, CollectionPlan> AnalyzeQuery(const Expr& root) {
  Analyzer analyzer;
  return analyzer.Run(root);
}

}  // namespace partix::xdb
