#ifndef PARTIX_ENGINE_PLAN_CACHE_H_
#define PARTIX_ENGINE_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "engine/planner.h"
#include "xquery/compiled_query.h"

namespace partix::xdb {

/// The engine-side prepared statement: the compiled query plus the static
/// planner's per-collection site constraints. Holds no pointers into any
/// Database — the data-dependent part of planning (index-posting
/// intersection into candidate document slots) happens at
/// ExecutePrepared() time, because stored documents change between
/// executions while the query's structure does not.
///
/// Thread-safety: deeply immutable; safe to share across threads. A plan
/// prepared on one Database may be executed on another (the constraints
/// are derived from the query alone), which is what lets the middleware
/// ship one CompiledQuery to every replica of a fragment.
struct PreparedQuery {
  xquery::CompiledQueryPtr compiled;
  /// AnalyzeQuery(compiled->ast()): one entry per referenced collection.
  std::map<std::string, CollectionPlan> plans;
  /// Cost (ms) of building this plan: parse (when compiled locally from
  /// text) + static analysis. Paid once; plan-cache hits report 0.
  double compile_ms = 0.0;
};

using PreparedQueryPtr = std::shared_ptr<const PreparedQuery>;

/// Cumulative counters of one PlanCache.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Entries removed: LRU capacity evictions + DDL invalidations.
  uint64_t evictions = 0;
  /// Clear() calls (every collection DDL invalidates the whole cache).
  uint64_t invalidations = 0;
};

/// LRU cache of prepared plans keyed by exact query text. Owned by a
/// Database and bound by its thread-safety contract (single-thread-only);
/// parse errors are never inserted, so a bad query fails identically on
/// every submission.
class PlanCache {
 public:
  /// `capacity` in entries; 0 disables caching (Lookup always misses,
  /// Insert is a no-op).
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan and promotes it to most-recently-used, or
  /// nullptr on miss. Counts a hit or miss.
  PreparedQueryPtr Lookup(const std::string& text);

  /// Inserts (or replaces) the plan for `text`, evicting the
  /// least-recently-used entry when over capacity. Returns the number of
  /// entries evicted.
  size_t Insert(const std::string& text, PreparedQueryPtr plan);

  /// Drops every entry (collection DDL invalidation: any cached plan may
  /// reference the changed collection). Returns the number of entries
  /// dropped; counts them as evictions and the call as an invalidation.
  size_t Clear();

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  const PlanCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::string text;
    PreparedQueryPtr plan;
  };

  size_t capacity_;
  /// Front = most recently used. Map values point into the list; list
  /// nodes are address-stable across splices.
  std::list<Entry> entries_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  PlanCacheStats stats_;
};

}  // namespace partix::xdb

#endif  // PARTIX_ENGINE_PLAN_CACHE_H_
