#ifndef PARTIX_ENGINE_PLAN_CACHE_H_
#define PARTIX_ENGINE_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "engine/planner.h"
#include "memory/governor.h"
#include "xquery/compiled_query.h"

namespace partix::xdb {

/// The engine-side prepared statement: the compiled query plus the static
/// planner's per-collection site constraints. Holds no pointers into any
/// Database — the data-dependent part of planning (index-posting
/// intersection into candidate document slots) happens at
/// ExecutePrepared() time, because stored documents change between
/// executions while the query's structure does not.
///
/// Thread-safety: deeply immutable; safe to share across threads. A plan
/// prepared on one Database may be executed on another (the constraints
/// are derived from the query alone), which is what lets the middleware
/// ship one CompiledQuery to every replica of a fragment.
struct PreparedQuery {
  xquery::CompiledQueryPtr compiled;
  /// AnalyzeQuery(compiled->ast()): one entry per referenced collection.
  std::map<std::string, CollectionPlan> plans;
  /// Cost (ms) of building this plan: parse (when compiled locally from
  /// text) + static analysis. Paid once; plan-cache hits report 0.
  double compile_ms = 0.0;
};

using PreparedQueryPtr = std::shared_ptr<const PreparedQuery>;

/// Cumulative counters of one PlanCache.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Entries removed: LRU capacity evictions + DDL invalidations.
  uint64_t evictions = 0;
  /// Clear() calls (every collection DDL invalidates the whole cache).
  uint64_t invalidations = 0;
};

/// LRU cache of prepared plans keyed by exact query text, bounded both by
/// entry count and by estimated bytes. Parse errors are never inserted, so
/// a bad query fails identically on every submission.
///
/// Thread-safe: an internal mutex guards the LRU list, index, byte
/// accounting, and stats, so concurrent Execute/Prepare calls on the
/// owning Database may hit the cache in parallel (they contend only for
/// the short LRU-splice critical section). Governor Charge is settled
/// outside the mutex — its pressure path re-enters ShedBytes, which takes
/// the same lock.
class PlanCache {
 public:
  /// `capacity` in entries; 0 disables caching (Lookup always misses,
  /// Insert is a no-op). `capacity_bytes` additionally bounds the summed
  /// per-plan byte estimates; 0 = unbounded by bytes.
  explicit PlanCache(size_t capacity, size_t capacity_bytes = 0)
      : capacity_(capacity), capacity_bytes_(capacity_bytes) {}
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Registers this cache with `governor` (eviction priority
  /// kPriorityPlanCache: plans are cheap to recompile but dearer than
  /// parsed documents, so the parse cache sheds first). Cached plan
  /// bytes are charged to the governor; under pressure it calls back
  /// into ShedBytes. Pass nullptr to detach. Same lifetime rule as
  /// DocumentStore::AttachGovernor: attach before concurrent use.
  void AttachGovernor(memory::MemoryGovernor* governor);

  /// Evicts LRU entries until at least `target` estimated bytes are
  /// freed (or the cache is empty); returns the bytes freed. Thread-safe.
  size_t ShedBytes(size_t target);

  /// Returns the cached plan and promotes it to most-recently-used, or
  /// nullptr on miss. Counts a hit or miss. Thread-safe.
  PreparedQueryPtr Lookup(const std::string& text);

  /// Inserts (or replaces) the plan for `text`, evicting the
  /// least-recently-used entry when over capacity. Returns the number of
  /// entries evicted. Thread-safe.
  size_t Insert(const std::string& text, PreparedQueryPtr plan);

  /// Drops every entry (collection DDL invalidation: any cached plan may
  /// reference the changed collection). Returns the number of entries
  /// dropped; counts them as evictions and the call as an invalidation.
  size_t Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t capacity_bytes() const { return capacity_bytes_; }
  /// Summed byte estimates of the cached plans.
  size_t total_bytes() const;
  /// Snapshot of the counters (copied under the lock).
  PlanCacheStats stats() const;

  /// Estimated in-memory footprint of one cached plan: the key and
  /// stored text, the constraint containers (counted exactly), and the
  /// compiled AST (estimated from the query text — ~6 expression-tree
  /// bytes per source byte, measured on the workload queries).
  static size_t EstimatePlanBytes(const std::string& text,
                                  const PreparedQuery& plan);

 private:
  struct Entry {
    std::string text;
    PreparedQueryPtr plan;
    size_t bytes = 0;
  };

  // Requires mu_ held; releases the victim's governor charge (Release
  // never runs callbacks, so it is safe under the lock — only Charge may
  // not be called with mu_ held).
  void EvictBack();

  size_t capacity_;
  size_t capacity_bytes_;
  size_t total_bytes_ = 0;
  memory::MemoryGovernor* governor_ = nullptr;
  int governor_id_ = -1;
  /// Guards entries_, index_, total_bytes_, stats_.
  mutable std::mutex mu_;
  /// Front = most recently used. Map values point into the list; list
  /// nodes are address-stable across splices.
  std::list<Entry> entries_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  PlanCacheStats stats_;
};

}  // namespace partix::xdb

#endif  // PARTIX_ENGINE_PLAN_CACHE_H_
