#ifndef PARTIX_ENGINE_PLANNER_H_
#define PARTIX_ENGINE_PLANNER_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "xquery/ast.h"

namespace partix::xdb {

/// Constraints that every document contributing to one collection() call
/// site must satisfy. Derived conservatively from the query: a document
/// failing any constraint cannot produce bindings or path results at that
/// site, so the engine may skip (not even parse) it. The candidate set is
/// a superset of the true matches; evaluation still verifies.
struct SiteConstraints {
  /// Element/attribute names on the path spine and in conjunctive
  /// predicates (checked against the structural index).
  std::vector<std::string> required_elements;

  /// Literal needles of conjunctive contains() predicates (checked against
  /// the full-text index).
  std::vector<std::string> contains_needles;

  /// (element name, literal value) pairs from conjunctive equality
  /// predicates on simple-content elements (checked against the value
  /// index).
  std::vector<std::pair<std::string, std::string>> value_equals;

  /// True when this call site gives no exploitable constraint; the whole
  /// collection must be considered.
  bool unconstrained = false;
};

/// Per-collection analysis result: one entry per collection() call site.
/// The candidate set for the collection is the union over sites.
struct CollectionPlan {
  std::vector<SiteConstraints> sites;
};

/// Walks the query AST and extracts index-usable constraints for every
/// collection() / doc() call site. Handles:
///   - path spines: collection("c")/Item/Name requires elements Item, Name
///   - step predicates: Item[Section = "CD"], Item[contains(Desc, "x")]
///   - FLWOR where clauses: conjuncts over variables bound by for-clauses
///     whose binding expression is rooted at a collection() call
/// Constraints under not()/empty()/or are ignored (kept sound by not
/// pruning on them).
std::map<std::string, CollectionPlan> AnalyzeQuery(const xquery::Expr& root);

}  // namespace partix::xdb

#endif  // PARTIX_ENGINE_PLANNER_H_
