#ifndef PARTIX_ENGINE_PLANNER_H_
#define PARTIX_ENGINE_PLANNER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "xpath/path.h"
#include "xquery/ast.h"

namespace partix::xdb {

/// One spine step with its derivable depth bound. Levels count from 1 at
/// the root element. While every axis up to a step is the child axis the
/// step's depth is exact; after the first descendant axis only a lower
/// bound survives. The structural index prunes documents whose occurrences
/// of `name` all fall outside the bound.
struct SpineLevel {
  std::string name;
  uint32_t min_level = 1;
  bool exact_level = false;

  bool operator==(const SpineLevel& o) const {
    return name == o.name && min_level == o.min_level &&
           exact_level == o.exact_level;
  }
};

/// Constraints that every document contributing to one collection() call
/// site must satisfy. Derived conservatively from the query: a document
/// failing any constraint cannot produce bindings or path results at that
/// site, so the engine may skip (not even parse) it. The candidate set is
/// a superset of the true matches; evaluation still verifies.
struct SiteConstraints {
  /// Element/attribute names on the path spine and in conjunctive
  /// predicates (checked against the structural index).
  std::vector<std::string> required_elements;

  /// Spine names with level bounds (checked against the structural label
  /// index when enabled; a strictly stronger version of the spine subset
  /// of `required_elements`).
  std::vector<SpineLevel> spine_levels;

  /// The planner's static evaluation strategy for each trailing step of
  /// the site's path, in step order (see xpath::StaticStepStrategy);
  /// kDynamic entries are resolved per document at evaluation time.
  std::vector<xpath::StepStrategy> step_strategies;

  /// Literal needles of conjunctive contains() predicates (checked against
  /// the full-text index).
  std::vector<std::string> contains_needles;

  /// (element name, literal value) pairs from conjunctive equality
  /// predicates on simple-content elements (checked against the value
  /// index).
  std::vector<std::pair<std::string, std::string>> value_equals;

  /// True when this call site gives no exploitable constraint; the whole
  /// collection must be considered.
  bool unconstrained = false;
};

/// Per-collection analysis result: one entry per collection() call site.
/// The candidate set for the collection is the union over sites.
struct CollectionPlan {
  std::vector<SiteConstraints> sites;
};

/// Walks the query AST and extracts index-usable constraints for every
/// collection() / doc() call site. Handles:
///   - path spines: collection("c")/Item/Name requires elements Item, Name
///   - step predicates: Item[Section = "CD"], Item[contains(Desc, "x")]
///   - FLWOR where clauses: conjuncts over variables bound by for-clauses
///     whose binding expression is rooted at a collection() call
/// Constraints under not()/empty()/or are ignored (kept sound by not
/// pruning on them).
std::map<std::string, CollectionPlan> AnalyzeQuery(const xquery::Expr& root);

}  // namespace partix::xdb

#endif  // PARTIX_ENGINE_PLANNER_H_
