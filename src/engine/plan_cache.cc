#include "engine/plan_cache.h"

#include <utility>

#include "telemetry/metrics.h"

namespace partix::xdb {

namespace {

/// Process-wide plan-cache byte gauge, aggregated across caches with
/// Add() deltas (one cache per node).
telemetry::Gauge* PlanCacheBytesGauge() {
  static telemetry::Gauge* g = telemetry::MetricsRegistry::Global().GetGauge(
      "partix_plan_cache_bytes");
  return g;
}

}  // namespace

PlanCache::~PlanCache() {
  PlanCacheBytesGauge()->Add(-static_cast<double>(total_bytes_));
  AttachGovernor(nullptr);
}

void PlanCache::AttachGovernor(memory::MemoryGovernor* governor) {
  if (governor_ != nullptr) {
    governor_->UnregisterConsumer(governor_id_);  // releases our charge
    governor_id_ = -1;
  }
  governor_ = governor;
  if (governor_ != nullptr) {
    governor_id_ = governor_->RegisterConsumer(
        "plan_cache", memory::MemoryGovernor::kPriorityPlanCache,
        [this](size_t target) { return ShedBytes(target); });
    if (total_bytes_ > 0) governor_->Charge(governor_id_, total_bytes_);
  }
}

size_t PlanCache::EstimatePlanBytes(const std::string& text,
                                    const PreparedQuery& plan) {
  size_t bytes = sizeof(PreparedQuery) + 2 * text.size();  // key + copy
  bytes += text.size() * 6;  // compiled AST estimate
  for (const auto& [name, cplan] : plan.plans) {
    bytes += name.size() + sizeof(CollectionPlan);
    for (const SiteConstraints& site : cplan.sites) {
      bytes += sizeof(SiteConstraints);
      for (const std::string& e : site.required_elements) bytes += e.size();
      for (const SpineLevel& s : site.spine_levels) {
        bytes += sizeof(SpineLevel) + s.name.size();
      }
      bytes += site.step_strategies.size() *
               sizeof(site.step_strategies[0]);
      for (const std::string& n : site.contains_needles) bytes += n.size();
      for (const auto& [e, v] : site.value_equals) {
        bytes += e.size() + v.size() + 2 * sizeof(std::string);
      }
    }
  }
  return bytes;
}

PreparedQueryPtr PlanCache::Lookup(const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(text);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  entries_.splice(entries_.begin(), entries_, it->second);
  return entries_.front().plan;
}

size_t PlanCache::Insert(const std::string& text, PreparedQueryPtr plan) {
  if (capacity_ == 0) return 0;
  const size_t bytes = EstimatePlanBytes(text, *plan);
  size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(text);
    if (it != index_.end()) {
      // Replace in place (two threads raced to prepare the same text —
      // the plans are equivalent, last writer wins).
      total_bytes_ -= it->second->bytes;
      total_bytes_ += bytes;
      PlanCacheBytesGauge()->Add(static_cast<double>(bytes) -
                                 static_cast<double>(it->second->bytes));
      if (governor_ != nullptr) {
        governor_->Release(governor_id_, it->second->bytes);
      }
      it->second->plan = std::move(plan);
      it->second->bytes = bytes;
      entries_.splice(entries_.begin(), entries_, it->second);
    } else {
      entries_.push_front(Entry{text, std::move(plan), bytes});
      index_.emplace(text, entries_.begin());
      total_bytes_ += bytes;
      PlanCacheBytesGauge()->Add(static_cast<double>(bytes));
      while (entries_.size() > capacity_ ||
             (capacity_bytes_ > 0 && total_bytes_ > capacity_bytes_ &&
              entries_.size() > 1)) {
        EvictBack();
        ++evicted;
      }
      stats_.evictions += evicted;
    }
  }
  // Charge outside mu_: governor pressure may call back into ShedBytes
  // on this very cache, which takes the same lock.
  if (governor_ != nullptr) governor_->Charge(governor_id_, bytes);
  return evicted;
}

void PlanCache::EvictBack() {
  Entry& victim = entries_.back();
  total_bytes_ -= victim.bytes;
  PlanCacheBytesGauge()->Add(-static_cast<double>(victim.bytes));
  if (governor_ != nullptr) governor_->Release(governor_id_, victim.bytes);
  index_.erase(victim.text);
  entries_.pop_back();
}

size_t PlanCache::ShedBytes(size_t target) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t freed = 0;
  size_t evicted = 0;
  while (freed < target && !entries_.empty()) {
    freed += entries_.back().bytes;
    EvictBack();
    ++evicted;
  }
  stats_.evictions += evicted;
  return freed;
}

size_t PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t dropped = entries_.size();
  PlanCacheBytesGauge()->Add(-static_cast<double>(total_bytes_));
  if (governor_ != nullptr && total_bytes_ > 0) {
    governor_->Release(governor_id_, total_bytes_);
  }
  total_bytes_ = 0;
  entries_.clear();
  index_.clear();
  stats_.evictions += dropped;
  ++stats_.invalidations;
  return dropped;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t PlanCache::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace partix::xdb
