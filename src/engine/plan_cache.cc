#include "engine/plan_cache.h"

#include <utility>

namespace partix::xdb {

PreparedQueryPtr PlanCache::Lookup(const std::string& text) {
  auto it = index_.find(text);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  entries_.splice(entries_.begin(), entries_, it->second);
  return entries_.front().plan;
}

size_t PlanCache::Insert(const std::string& text, PreparedQueryPtr plan) {
  if (capacity_ == 0) return 0;
  auto it = index_.find(text);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    entries_.splice(entries_.begin(), entries_, it->second);
    return 0;
  }
  entries_.push_front(Entry{text, std::move(plan)});
  index_.emplace(text, entries_.begin());
  size_t evicted = 0;
  while (entries_.size() > capacity_) {
    index_.erase(entries_.back().text);
    entries_.pop_back();
    ++evicted;
  }
  stats_.evictions += evicted;
  return evicted;
}

size_t PlanCache::Clear() {
  const size_t dropped = entries_.size();
  entries_.clear();
  index_.clear();
  stats_.evictions += dropped;
  ++stats_.invalidations;
  return dropped;
}

}  // namespace partix::xdb
