// Fragmentation-design advisor walkthrough — the methodology the paper
// lists as future work ("we intend to use the proposed fragmentation
// model to define a methodology for fragmenting XML databases").
//
// Feeds a query workload to the minterm-based horizontal design algorithm
// (the classical relational method of Özsu & Valduriez, which the paper
// builds on, lifted to XML simple predicates), verifies the proposed
// design against the correctness rules, deploys it, and shows that the
// workload's queries localize onto the designed fragments.
//
// Build & run:  ./build/examples/design_advisor

#include <cstdio>

#include "fragmentation/advisor.h"
#include "fragmentation/correctness.h"
#include "gen/virtual_store.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"

using namespace partix;  // example code: brevity over style here

namespace {

#define CHECK_OK(expr)                                              \
  do {                                                              \
    auto _st = (expr);                                              \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                     \
    }                                                               \
  } while (0)

}  // namespace

int main() {
  gen::ItemsGenOptions options;
  options.doc_count = 500;
  options.seed = 2006;
  auto items = gen::GenerateItems(options, nullptr);
  CHECK_OK(items.status());

  // The workload whose access patterns should drive the design. The CD
  // query dominates (it appears twice = weight 2).
  std::vector<std::string> workload = {
      "for $i in collection(\"items\")/Item "
      "where $i/Section = \"CD\" return $i/Name",
      "for $i in collection(\"items\")/Item "
      "where $i/Section = \"CD\" return $i/Code",
      "count(collection(\"items\")/Item[contains(Description, "
      "\"good\")])",
  };

  auto report = frag::DesignHorizontalFromQueries(*items, workload, {});
  CHECK_OK(report.status());

  std::printf("advisor proposal (%zu fragments, balance factor %.2f):\n",
              report->schema.fragments.size(), report->BalanceFactor());
  for (size_t i = 0; i < report->schema.fragments.size(); ++i) {
    std::printf("  %-12s %4zu docs   %s\n",
                report->schema.fragments[i].name().c_str(),
                report->fragment_sizes[i],
                report->schema.fragments[i].ToString("Citems").c_str());
  }
  for (const std::string& note : report->notes) {
    std::printf("  note: %s\n", note.c_str());
  }

  auto correctness = frag::CheckCorrectness(*items, report->schema);
  CHECK_OK(correctness.status());
  std::printf("correctness: %s\n", correctness->Summary().c_str());
  if (!correctness->ok()) return 1;

  // Deploy the design and demonstrate localization of the very workload
  // it was derived from.
  middleware::DistributionCatalog catalog;
  middleware::ClusterSim cluster(report->schema.fragments.size(),
                                 xdb::DatabaseOptions(),
                                 middleware::NetworkModel());
  middleware::DataPublisher publisher(&cluster, &catalog);
  CHECK_OK(publisher.PublishFragmented(*items, report->schema));
  middleware::QueryService service(&cluster, &catalog);

  std::printf("\nworkload routing on the proposed design:\n");
  for (const std::string& query : workload) {
    auto plan = service.decomposer().Decompose(query);
    CHECK_OK(plan.status());
    std::printf("  %zu/%zu fragments touched  <- %.60s...\n",
                plan->subqueries.size(),
                report->schema.fragments.size(), query.c_str());
  }
  return 0;
}
