// Vertical fragmentation walkthrough — the paper's XBenchVer scenario.
//
// Generates an XBench-style article collection, splits every article into
// prolog / body / epilog projections, verifies the correctness rules
// (including the exact reconstruction join over the per-node
// reconstruction IDs), and shows how the middleware handles:
//   - a prolog-only query (rewritten to a single fragment),
//   - a prolog+epilog query (fetch + middleware join),
//   - the exact algebra-level reconstruction of one article.
//
// Build & run:  ./build/examples/xbench_vertical

#include <cstdio>

#include "common/strings.h"
#include "fragmentation/correctness.h"
#include "fragmentation/fragmenter.h"
#include "fragmentation/reconstruct.h"
#include "gen/xbench.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "workload/schemas.h"
#include "xml/compare.h"

using namespace partix;  // example code: brevity over style here

namespace {

#define CHECK_OK(expr)                                              \
  do {                                                              \
    auto _st = (expr);                                              \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                     \
    }                                                               \
  } while (0)

}  // namespace

int main() {
  gen::XBenchGenOptions options;
  options.doc_count = 8;
  options.target_doc_bytes = 8 * 1024;
  options.seed = 2006;
  auto articles = gen::GenerateArticles(options, nullptr);
  CHECK_OK(articles.status());
  std::printf("generated %zu articles (%s)\n", articles->size(),
              HumanBytes(articles->ApproxBytes()).c_str());

  auto schema = workload::ArticleVerticalSchema("papers");
  CHECK_OK(schema.status());
  std::printf("\nfragmentation design:\n");
  for (const frag::FragmentDef& def : schema->fragments) {
    std::printf("  %s\n", def.ToString("Cpapers").c_str());
  }

  // Correctness rules: node completeness, disjointness, and an actual
  // reconstruction round-trip.
  auto report = frag::CheckCorrectness(*articles, *schema);
  CHECK_OK(report.status());
  std::printf("correctness: %s\n", report->Summary().c_str());
  if (!report->ok()) return 1;

  // Algebra-level exact reconstruction of one article.
  auto fragments = frag::ApplyFragmentation(*articles, *schema);
  CHECK_OK(fragments.status());
  auto rebuilt = frag::ReconstructVertical(
      *fragments, "papers", articles->docs()[0]->pool());
  CHECK_OK(rebuilt.status());
  bool equal = xml::DocumentsEqual(*articles->docs()[0],
                                   *rebuilt->docs()[0]);
  std::printf("exact join-reconstruction of '%s': %s\n",
              articles->docs()[0]->doc_name().c_str(),
              equal ? "identical to the original" : "MISMATCH");
  if (!equal) return 1;

  // Distributed execution.
  middleware::DistributionCatalog catalog;
  middleware::ClusterSim cluster(3, xdb::DatabaseOptions(),
                                 middleware::NetworkModel());
  middleware::DataPublisher publisher(&cluster, &catalog);
  CHECK_OK(publisher.PublishFragmented(*articles, *schema));
  middleware::QueryService service(&cluster, &catalog);

  const char* queries[] = {
      // prolog only: rewritten to the prolog fragment.
      "for $a in collection(\"papers\")/article "
      "return $a/prolog/title",
      // prolog + epilog: middleware join over the reconstruction IDs.
      "for $a in collection(\"papers\")/article "
      "where $a/prolog/genre = \"survey\" "
      "return count($a/epilog/references/reference)",
  };
  for (const char* query : queries) {
    std::printf("\n--- %s ---\n", query);
    auto plan = service.decomposer().Decompose(query);
    CHECK_OK(plan.status());
    std::printf("plan: %zu sub-queries, composition=%s\n",
                plan->subqueries.size(),
                middleware::CompositionName(plan->composition));
    for (const std::string& note : plan->notes) {
      std::printf("  note: %s\n", note.c_str());
    }
    auto result = service.ExecutePlan(*plan);
    CHECK_OK(result.status());
    std::printf("result (%.2f ms):\n%s\n", result->response_ms,
                result->serialized.c_str());
  }
  return 0;
}
