// Quickstart: the PartiX public API in one file.
//
//   1. Parse XML documents into a homogeneous collection.
//   2. Query them with the embedded XQuery engine (xdb).
//   3. Define a horizontal fragmentation, check the correctness rules
//      (completeness / disjointness / reconstruction).
//   4. Deploy the fragments on a simulated cluster and run a distributed
//      query through the PartiX middleware — the sub-queries, data
//      localization, and result composition are all automatic.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "engine/database.h"
#include "fragmentation/correctness.h"
#include "fragmentation/fragment_def.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "xml/parser.h"

using namespace partix;  // example code: brevity over style here

namespace {

constexpr const char* kDocs[] = {
    "<Item><Code>1</Code><Name>Blue Train</Name>"
    "<Description>a good jazz record</Description>"
    "<Section>CD</Section><Release>1958-01-01</Release></Item>",
    "<Item><Code>2</Code><Name>Alien</Name>"
    "<Description>classic movie</Description>"
    "<Section>DVD</Section><Release>1979-05-25</Release></Item>",
    "<Item><Code>3</Code><Name>Kind of Blue</Name>"
    "<Description>another good record</Description>"
    "<Section>CD</Section><Release>1959-08-17</Release></Item>",
};

#define CHECK_OK(expr)                                          \
  do {                                                          \
    auto _st = (expr);                                          \
    if (!_st.ok()) {                                            \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                 \
    }                                                           \
  } while (0)

}  // namespace

int main() {
  // --- 1. Build the collection -------------------------------------
  auto pool = std::make_shared<xml::NamePool>();
  xml::Collection items("items", xml::VirtualStoreSchema(),
                        "/Store/Items/Item",
                        xml::RepoKind::kMultipleDocuments);
  int n = 0;
  for (const char* text : kDocs) {
    auto doc = xml::ParseXml(pool, "item" + std::to_string(n++), text);
    CHECK_OK(doc.status());
    CHECK_OK(items.Add(*doc));
  }
  std::printf("collection '%s': %zu documents\n", items.name().c_str(),
              items.size());

  // --- 2. Query with the embedded engine ---------------------------
  xdb::Database db;
  CHECK_OK(db.StoreCollection(items));
  auto result = db.Execute(
      "for $i in collection(\"items\")/Item "
      "where contains($i/Description, \"good\") return $i/Name");
  CHECK_OK(result.status());
  std::printf("\nlocal query result:\n%s\n", result->serialized.c_str());

  // --- 3. Fragment and verify --------------------------------------
  frag::FragmentationSchema schema;
  schema.collection = "items";
  auto mu_cd = xpath::Conjunction::Parse("/Item/Section = \"CD\"");
  auto mu_rest = xpath::Conjunction::Parse("/Item/Section != \"CD\"");
  CHECK_OK(mu_cd.status());
  CHECK_OK(mu_rest.status());
  schema.fragments.emplace_back(frag::HorizontalDef{"f_cd", *mu_cd});
  schema.fragments.emplace_back(frag::HorizontalDef{"f_rest", *mu_rest});

  auto report = frag::CheckCorrectness(items, schema);
  CHECK_OK(report.status());
  std::printf("\nfragmentation correctness: %s\n",
              report->Summary().c_str());

  // --- 4. Distribute and query through the middleware --------------
  middleware::DistributionCatalog catalog;
  middleware::ClusterSim cluster(2, xdb::DatabaseOptions(),
                                 middleware::NetworkModel());
  middleware::DataPublisher publisher(&cluster, &catalog);
  CHECK_OK(publisher.PublishFragmented(items, schema));

  middleware::QueryService service(&cluster, &catalog);
  auto distributed = service.Execute(
      "for $i in collection(\"items\")/Item "
      "where $i/Section = \"CD\" return $i/Name");
  CHECK_OK(distributed.status());
  std::printf(
      "\ndistributed query: %zu sub-queries, %zu fragment(s) pruned by "
      "data localization\nresult:\n%s\n",
      distributed->subqueries.size(), distributed->pruned_fragments,
      distributed->serialized.c_str());
  std::printf("\nresponse %.3f ms (slowest node %.3f ms, transmission "
              "%.3f ms)\n",
              distributed->response_ms, distributed->slowest_node_ms,
              distributed->transmission_ms);
  return 0;
}
