// partix_shell — a small interactive shell over the embedded xdb engine.
//
//   ./build/examples/partix_shell                         # interactive
//   ./build/examples/partix_shell --gen items=200
//       -c 'count(collection("items")/Item)'              # scripted
//   ./build/examples/partix_shell --load dump=items ...   # import export dir
//
// Interactive commands:
//   .gen <collection>=<count>     generate sample virtual-store items
//   .load <dir>=<collection>      import a directory exported with
//                                 xdb::ExportCollection
//   .save <collection>=<dir>      export a collection
//   .collections                  list collections with stats
//   .quit                         exit
// Any other input line is evaluated as an XQuery expression.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "engine/database.h"
#include "engine/persistence.h"
#include "gen/virtual_store.h"

using namespace partix;  // example code: brevity over style here

namespace {

void RunQuery(xdb::Database& db, const std::string& query) {
  auto result = db.Execute(query);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", result->serialized.c_str());
  std::printf("-- %llu item(s), %.2f ms, %llu/%llu docs considered, "
              "%llu parsed\n",
              static_cast<unsigned long long>(result->metrics.result_items),
              result->metrics.elapsed_ms,
              static_cast<unsigned long long>(
                  result->metrics.docs_considered),
              static_cast<unsigned long long>(
                  result->metrics.docs_in_collections),
              static_cast<unsigned long long>(result->metrics.docs_parsed));
}

bool GenItems(xdb::Database& db, const std::string& spec) {
  size_t eq = spec.find('=');
  std::string name = eq == std::string::npos ? spec : spec.substr(0, eq);
  int64_t count = 100;
  if (eq != std::string::npos) {
    if (!ParseInt64(spec.substr(eq + 1), &count) || count < 1) {
      std::printf("error: bad count in '%s'\n", spec.c_str());
      return false;
    }
  }
  gen::ItemsGenOptions options;
  options.doc_count = static_cast<size_t>(count);
  options.name = name;
  auto items = gen::GenerateItems(options, db.pool());
  if (!items.ok()) {
    std::printf("error: %s\n", items.status().ToString().c_str());
    return false;
  }
  Status status = db.StoreCollection(*items);
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return false;
  }
  std::printf("generated %zu documents into '%s'\n", items->size(),
              name.c_str());
  return true;
}

bool LoadDir(xdb::Database& db, const std::string& spec) {
  size_t eq = spec.find('=');
  if (eq == std::string::npos) {
    std::printf("usage: .load <dir>=<collection>\n");
    return false;
  }
  Status status = xdb::ImportCollection(db, spec.substr(eq + 1),
                                        spec.substr(0, eq));
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return false;
  }
  std::printf("loaded '%s' from %s\n", spec.substr(eq + 1).c_str(),
              spec.substr(0, eq).c_str());
  return true;
}

void ListCollections(xdb::Database& db) {
  for (const std::string& name : db.CollectionNames()) {
    auto stats = db.Stats(name);
    std::printf("  %-20s %s\n", name.c_str(),
                stats.ok() ? (*stats)->Summary().c_str() : "?");
  }
}

bool HandleCommand(xdb::Database& db, const std::string& line) {
  if (line == ".quit" || line == ".exit") return false;
  if (line == ".collections") {
    ListCollections(db);
  } else if (StartsWith(line, ".gen ")) {
    GenItems(db, line.substr(5));
  } else if (StartsWith(line, ".load ")) {
    LoadDir(db, line.substr(6));
  } else if (StartsWith(line, ".save ")) {
    std::string spec = line.substr(6);
    size_t eq = spec.find('=');
    if (eq == std::string::npos) {
      std::printf("usage: .save <collection>=<dir>\n");
    } else {
      Status status = xdb::ExportCollection(db, spec.substr(0, eq),
                                            spec.substr(eq + 1));
      std::printf("%s\n", status.ok() ? "saved" : status.ToString().c_str());
    }
  } else if (!line.empty() && line[0] == '.') {
    std::printf("unknown command '%s'\n", line.c_str());
  } else if (!line.empty()) {
    RunQuery(db, line);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  xdb::Database db;
  bool interactive = true;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gen") == 0 && i + 1 < argc) {
      if (!GenItems(db, argv[++i])) return 1;
    } else if (std::strcmp(argv[i], "--load") == 0 && i + 1 < argc) {
      if (!LoadDir(db, argv[++i])) return 1;
    } else if (std::strcmp(argv[i], "-c") == 0 && i + 1 < argc) {
      RunQuery(db, argv[++i]);
      interactive = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--gen name=count] [--load dir=coll] "
                   "[-c query]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!interactive) return 0;

  std::printf("partix shell — XQuery over the embedded xdb engine\n"
              "commands: .gen .load .save .collections .quit\n");
  std::string line;
  while (std::printf("partix> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (!HandleCommand(db, line)) break;
  }
  return 0;
}
