// Horizontal fragmentation walkthrough — the paper's ItemsSHor scenario.
//
// Generates a synthetic Citems collection (the virtual-store items of
// Fig. 1), designs a 4-fragment horizontal fragmentation on
// /Item/Section, verifies the correctness rules, publishes it on a
// simulated cluster, and contrasts how the middleware routes:
//   - a query whose predicate matches the fragmentation (one sub-query),
//   - a text search (all fragments, intra-query parallelism),
//   - a decomposable count() aggregate (per-fragment counts, summed).
//
// Build & run:  ./build/examples/store_horizontal

#include <cstdio>

#include "common/strings.h"
#include "fragmentation/correctness.h"
#include "gen/virtual_store.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "workload/schemas.h"

using namespace partix;  // example code: brevity over style here

namespace {

#define CHECK_OK(expr)                                              \
  do {                                                              \
    auto _st = (expr);                                              \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                     \
    }                                                               \
  } while (0)

int ShowQuery(middleware::QueryService& service, const char* label,
              const std::string& query) {
  std::printf("\n--- %s ---\n%s\n", label, query.c_str());
  auto plan = service.decomposer().Decompose(query);
  CHECK_OK(plan.status());
  std::printf("plan: %zu sub-queries, %zu pruned, composition=%s\n",
              plan->subqueries.size(), plan->pruned_fragments,
              middleware::CompositionName(plan->composition));
  for (const middleware::SubQuery& sub : plan->subqueries) {
    std::printf("  -> node %zu, fragment %-12s %s\n", sub.node,
                sub.fragment.c_str(), sub.query.c_str());
  }
  auto result = service.ExecutePlan(*plan);
  CHECK_OK(result.status());
  std::printf("response %.2f ms (slowest node %.2f ms); %llu result "
              "bytes\n",
              result->response_ms, result->slowest_node_ms,
              static_cast<unsigned long long>(result->serialized.size()));
  return 0;
}

}  // namespace

int main() {
  gen::ItemsGenOptions options;
  options.doc_count = 400;
  options.seed = 2006;
  auto items = gen::GenerateItems(options, nullptr);
  CHECK_OK(items.status());
  std::printf("generated %zu item documents (%s)\n", items->size(),
              HumanBytes(items->ApproxBytes()).c_str());

  auto schema =
      workload::SectionHorizontalSchema("items", options.sections, 4);
  CHECK_OK(schema.status());
  std::printf("\nfragmentation design:\n");
  for (const frag::FragmentDef& def : schema->fragments) {
    std::printf("  %s\n", def.ToString("Citems").c_str());
  }

  auto report = frag::CheckCorrectness(*items, *schema);
  CHECK_OK(report.status());
  std::printf("correctness: %s\n", report->Summary().c_str());
  if (!report->ok()) return 1;

  middleware::DistributionCatalog catalog;
  middleware::ClusterSim cluster(4, xdb::DatabaseOptions(),
                                 middleware::NetworkModel());
  middleware::DataPublisher publisher(&cluster, &catalog);
  CHECK_OK(publisher.PublishFragmented(*items, *schema));

  middleware::QueryService service(&cluster, &catalog);
  int rc = 0;
  rc |= ShowQuery(service, "localized selection",
                  "for $i in collection(\"items\")/Item "
                  "where $i/Section = \"CD\" return $i/Name");
  rc |= ShowQuery(service, "text search (all fragments in parallel)",
                  "for $i in collection(\"items\")/Item "
                  "where contains($i/Description, \"good\") "
                  "return $i/Code");
  rc |= ShowQuery(service, "decomposable aggregation",
                  "count(collection(\"items\")/Item)");
  return rc;
}
