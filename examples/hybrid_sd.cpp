// Hybrid fragmentation walkthrough — the paper's StoreHyb scenario.
//
// A single-document (SD) repository cannot be horizontally fragmented (the
// selection operator works on documents), so the paper normalizes it with
// a hybrid design: project the /Store/Items subtree and partition its Item
// instances by Section, keeping the pruned rest of the store as its own
// fragment. This example builds that design in both materializations
// (FragMode1: one document per Item; FragMode2: a single pruned document),
// verifies correctness, and compares how the two modes behave for the same
// queries.
//
// Build & run:  ./build/examples/hybrid_sd

#include <cstdio>

#include "common/strings.h"
#include "fragmentation/correctness.h"
#include "fragmentation/fragmenter.h"
#include "gen/virtual_store.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "workload/schemas.h"

using namespace partix;  // example code: brevity over style here

namespace {

#define CHECK_OK(expr)                                              \
  do {                                                              \
    auto _st = (expr);                                              \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                     \
    }                                                               \
  } while (0)

}  // namespace

int main() {
  gen::StoreGenOptions options;
  options.item_count = 300;
  options.seed = 2006;
  options.large_items = false;
  auto store = gen::GenerateStore(options, nullptr);
  CHECK_OK(store.status());
  std::printf("generated the SD store document (%s, %zu items)\n",
              HumanBytes(store->ApproxBytes()).c_str(),
              options.item_count);

  // SD repositories may not be horizontally fragmented; prove it.
  {
    frag::FragmentationSchema bad;
    bad.collection = "store";
    auto mu = xpath::Conjunction::Parse("true");
    bad.fragments.emplace_back(frag::HorizontalDef{"f", *mu});
    auto attempt = frag::ApplyFragmentation(*store, bad);
    std::printf("\nhorizontal fragmentation of the SD store: %s\n",
                attempt.status().ToString().c_str());
  }

  for (frag::HybridMode mode : {frag::HybridMode::kOneDocPerSubtree,
                                frag::HybridMode::kSinglePrunedDoc}) {
    const char* mode_name = mode == frag::HybridMode::kOneDocPerSubtree
                                ? "FragMode1 (one doc per Item)"
                                : "FragMode2 (single pruned doc)";
    std::printf("\n===== %s =====\n", mode_name);

    auto schema =
        workload::StoreHybridSchema("store", options.sections, 4, mode);
    CHECK_OK(schema.status());
    for (const frag::FragmentDef& def : schema->fragments) {
      std::printf("  %s\n", def.ToString("Cstore").c_str());
    }

    auto report = frag::CheckCorrectness(*store, *schema);
    CHECK_OK(report.status());
    std::printf("correctness: %s\n", report->Summary().c_str());
    if (!report->ok()) return 1;

    auto fragments = frag::ApplyFragmentation(*store, *schema);
    CHECK_OK(fragments.status());
    for (const xml::Collection& frag_coll : *fragments) {
      std::printf("  fragment %-14s: %4zu document(s), %s\n",
                  frag_coll.name().c_str(), frag_coll.size(),
                  HumanBytes(frag_coll.ApproxBytes()).c_str());
    }

    middleware::DistributionCatalog catalog;
    middleware::ClusterSim cluster(5, xdb::DatabaseOptions(),
                                   middleware::NetworkModel());
    middleware::DataPublisher publisher(&cluster, &catalog);
    CHECK_OK(publisher.PublishFragmented(*store, *schema));
    middleware::QueryService service(&cluster, &catalog);

    const char* queries[] = {
        "for $i in collection(\"store\")/Store/Items/Item "
        "where $i/Section = \"CD\" return $i/Name",
        "count(collection(\"store\")/Store/Items/Item)",
        "for $s in collection(\"store\")/Store/Sections/Section "
        "return $s/Name",
    };
    for (const char* query : queries) {
      auto plan = service.decomposer().Decompose(query);
      CHECK_OK(plan.status());
      auto result = service.ExecutePlan(*plan);
      CHECK_OK(result.status());
      std::printf("  [%zu sub-queries, %s] %.2f ms  <- %s\n",
                  plan->subqueries.size(),
                  middleware::CompositionName(plan->composition),
                  result->response_ms, query);
    }
  }
  return 0;
}
