#include "fragmentation/correctness.h"
#include "gen/virtual_store.h"
#include "gen/xbench.h"
#include "gtest/gtest.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"
#include "xquery/parser.h"

namespace partix::workload {
namespace {

TEST(QuerySetsTest, AllQueriesParse) {
  for (const auto& set : {HorizontalQueries("c"), VerticalQueries("c"),
                          HybridQueries("c")}) {
    for (const QuerySpec& q : set) {
      auto ast = xquery::ParseQuery(q.text);
      EXPECT_TRUE(ast.ok()) << q.id << ": " << ast.status();
      EXPECT_FALSE(q.description.empty()) << q.id;
    }
  }
}

TEST(QuerySetsTest, ExpectedCardinalities) {
  EXPECT_EQ(HorizontalQueries("c").size(), 8u);
  EXPECT_EQ(VerticalQueries("c").size(), 10u);
  EXPECT_EQ(HybridQueries("c").size(), 11u);
}

TEST(QuerySetsTest, FindQueryById) {
  auto set = HorizontalQueries("c");
  ASSERT_NE(FindQuery(set, "Q5"), nullptr);
  EXPECT_EQ(FindQuery(set, "Q5")->id, "Q5");
  EXPECT_EQ(FindQuery(set, "Q99"), nullptr);
}

TEST(SchemasTest, SectionHorizontalCoversAnyFragmentCount) {
  std::vector<std::string> sections = {"CD", "DVD", "BOOK", "GAME",
                                       "TOY", "HIFI", "PC", "GARDEN"};
  gen::ItemsGenOptions options;
  options.doc_count = 120;
  options.sections = sections;
  auto items = gen::GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  for (size_t fragments : {1, 2, 3, 4, 5, 8}) {
    auto schema = SectionHorizontalSchema("items", sections, fragments);
    ASSERT_TRUE(schema.ok()) << fragments << ": " << schema.status();
    EXPECT_EQ(schema->fragments.size(), fragments);
    auto report = frag::CheckCorrectness(*items, *schema);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->ok())
        << fragments << " fragments: " << report->Summary();
  }
}

TEST(SchemasTest, RejectsMoreFragmentsThanSections) {
  auto schema = SectionHorizontalSchema("items", {"A", "B"}, 3);
  EXPECT_FALSE(schema.ok());
}

TEST(SchemasTest, ArticleVerticalIsCorrectOnGeneratedData) {
  gen::XBenchGenOptions options;
  options.doc_count = 4;
  options.target_doc_bytes = 4096;
  auto articles = gen::GenerateArticles(options, nullptr);
  ASSERT_TRUE(articles.ok());
  auto schema = ArticleVerticalSchema("papers");
  ASSERT_TRUE(schema.ok());
  auto report = frag::CheckCorrectness(*articles, *schema);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST(SchemasTest, StoreHybridIsCorrectInBothModes) {
  gen::StoreGenOptions options;
  options.item_count = 40;
  options.large_items = false;
  auto store = gen::GenerateStore(options, nullptr);
  ASSERT_TRUE(store.ok());
  for (frag::HybridMode mode : {frag::HybridMode::kOneDocPerSubtree,
                                frag::HybridMode::kSinglePrunedDoc}) {
    for (size_t fragments : {2, 4}) {
      auto schema =
          StoreHybridSchema("store", options.sections, fragments, mode);
      ASSERT_TRUE(schema.ok());
      EXPECT_EQ(schema->fragments.size(), fragments + 1);  // + pruned rest
      auto report = frag::CheckCorrectness(*store, *schema);
      ASSERT_TRUE(report.ok());
      EXPECT_TRUE(report->ok()) << report->Summary();
    }
  }
}

TEST(HarnessTest, CentralizedDeploymentMeasures) {
  gen::ItemsGenOptions options;
  options.doc_count = 20;
  auto items = gen::GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  auto deployment = Deployment::Centralized(*items, xdb::DatabaseOptions(),
                                            middleware::NetworkModel());
  ASSERT_TRUE(deployment.ok()) << deployment.status();
  QuerySpec q{"T1", "test", "count(collection(\"items\")/Item)"};
  MeasureOptions measure;
  measure.runs = 3;
  auto m = Measure(deployment->get(), q, measure);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_GT(m->response_ms, 0.0);
  EXPECT_EQ(m->subqueries, 1u);
}

TEST(HarnessTest, FragmentedDeploymentPlacesOneFragmentPerNode) {
  gen::ItemsGenOptions options;
  options.doc_count = 30;
  auto items = gen::GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  auto schema = SectionHorizontalSchema("items", options.sections, 4);
  ASSERT_TRUE(schema.ok());
  auto deployment = Deployment::Fragmented(
      *items, *schema, xdb::DatabaseOptions(), middleware::NetworkModel());
  ASSERT_TRUE(deployment.ok()) << deployment.status();
  EXPECT_EQ(deployment->get()->node_count(), 4u);
  QuerySpec q{"T1", "test", "count(collection(\"items\")/Item)"};
  MeasureOptions measure;
  measure.runs = 2;
  auto m = Measure(deployment->get(), q, measure);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->subqueries, 4u);
}

TEST(HarnessTest, MeasureRespectsRunProtocol) {
  gen::ItemsGenOptions options;
  options.doc_count = 10;
  auto items = gen::GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  auto deployment = Deployment::Centralized(*items, xdb::DatabaseOptions(),
                                            middleware::NetworkModel());
  ASSERT_TRUE(deployment.ok());
  QuerySpec q{"T1", "test", "count(collection(\"items\")/Item)"};
  MeasureOptions single;
  single.runs = 1;
  single.discard_first = true;  // single run is still counted
  auto m = Measure(deployment->get(), q, single);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->response_ms, 0.0);
}

}  // namespace
}  // namespace partix::workload
