#include <cmath>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "gtest/gtest.h"

namespace partix {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "not_found: missing thing");
}

TEST(StatusTest, EveryCodeHasName) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "parse_error");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "corruption");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, DefaultIsError) {
  Result<int> r;
  EXPECT_FALSE(r.ok());
}

Result<int> Doubler(Result<int> in) {
  PARTIX_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status::Internal("boom")).ok());
}

TEST(StringsTest, Split) {
  auto parts = Split("a//b", '/');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  auto nonempty = SplitSkipEmpty("/x/y/", '/');
  ASSERT_EQ(nonempty.size(), 2u);
  EXPECT_EQ(nonempty[0], "x");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \n"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, ContainsAndAffixes) {
  EXPECT_TRUE(Contains("hello world", "lo wo"));
  EXPECT_FALSE(Contains("hello", "LO"));
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(EndsWith("hello", "llo"));
  EXPECT_FALSE(StartsWith("h", "he"));
}

TEST(StringsTest, TokenizeWords) {
  auto tokens = TokenizeWords("Good, CHEAP item-42!");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "good");
  EXPECT_EQ(tokens[1], "cheap");
  EXPECT_EQ(tokens[2], "item");
  EXPECT_EQ(tokens[3], "42");
  EXPECT_TRUE(TokenizeWords("  ,,, ").empty());
}

TEST(StringsTest, ParseNumbers) {
  double d = 0;
  EXPECT_TRUE(ParseDouble(" 3.25 ", &d));
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_FALSE(ParseDouble("3.2x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
  int64_t i = 0;
  EXPECT_TRUE(ParseInt64("-17", &i));
  EXPECT_EQ(i, -17);
  EXPECT_FALSE(ParseInt64("1.5", &i));
}

TEST(StringsTest, FormatNumber) {
  EXPECT_EQ(FormatNumber(42.0), "42");
  EXPECT_EQ(FormatNumber(-3.0), "-3");
  EXPECT_EQ(FormatNumber(2.5), "2.5");
  EXPECT_EQ(FormatNumber(std::nan("")), "NaN");
}

TEST(StringsTest, XmlEscaping) {
  EXPECT_EQ(EscapeXmlText("a<b&c>d\"e"), "a&lt;b&amp;c&gt;d\"e");
  EXPECT_EQ(EscapeXmlAttr("a\"b"), "a&quot;b");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(5 * 1024 * 1024), "5.0 MiB");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(5);
  int low = 0;
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Zipf(8, 1.0) == 0) ++low;
  }
  // With s=1 over 8 ranks the first rank should get ~37% of the mass,
  // versus 12.5% uniform.
  EXPECT_GT(low, kDraws / 5);
}

TEST(RngTest, ZipfZeroSkewIsRoughlyUniform) {
  Rng rng(5);
  int low = 0;
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Zipf(8, 0.0) == 0) ++low;
  }
  EXPECT_LT(low, kDraws / 4);
}

TEST(RngTest, SentenceInjectsWord) {
  Rng rng(5);
  std::string s = rng.Sentence(10, "zebra");
  EXPECT_TRUE(Contains(s, "zebra"));
}

TEST(RngTest, WordLengthBounds) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    std::string w = rng.Word(3, 6);
    EXPECT_GE(w.size(), 3u);
    EXPECT_LE(w.size(), 6u);
  }
}

}  // namespace
}  // namespace partix
