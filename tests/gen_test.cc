#include <set>

#include "gen/virtual_store.h"
#include "gen/xbench.h"
#include "gtest/gtest.h"
#include "xml/serializer.h"
#include "xpath/eval.h"
#include "xpath/path.h"
#include "xpath/predicate.h"

namespace partix::gen {
namespace {

xpath::Path P(const std::string& text) {
  auto result = xpath::Path::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

TEST(ItemsGeneratorTest, ProducesValidHomogeneousCollection) {
  ItemsGenOptions options;
  options.doc_count = 50;
  options.seed = 1;
  auto items = GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok()) << items.status();
  EXPECT_EQ(items->size(), 50u);
  EXPECT_EQ(items->kind(), xml::RepoKind::kMultipleDocuments);
  EXPECT_EQ(items->RootType(), "Item");
  EXPECT_TRUE(items->ValidateHomogeneous().ok());
}

TEST(ItemsGeneratorTest, DeterministicInSeed) {
  ItemsGenOptions options;
  options.doc_count = 10;
  options.seed = 42;
  auto a = GenerateItems(options, nullptr);
  auto b = GenerateItems(options, nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(xml::Serialize(*a->docs()[i]), xml::Serialize(*b->docs()[i]));
  }
  options.seed = 43;
  auto c = GenerateItems(options, nullptr);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(xml::Serialize(*a->docs()[0]), xml::Serialize(*c->docs()[0]));
}

TEST(ItemsGeneratorTest, SmallDocsHaveNoPicturesOrPrices) {
  ItemsGenOptions options;
  options.doc_count = 20;
  options.large_docs = false;
  auto items = GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  for (const auto& doc : items->docs()) {
    EXPECT_TRUE(xpath::EvalPath(*doc, P("/Item/PictureList")).empty());
    EXPECT_TRUE(xpath::EvalPath(*doc, P("/Item/PricesHistory")).empty());
    // Small documents target roughly 2 KB.
    EXPECT_LT(xml::Serialize(*doc).size(), 4096u);
  }
}

TEST(ItemsGeneratorTest, LargeDocsCarryPicturesAndPrices) {
  ItemsGenOptions options;
  options.doc_count = 5;
  options.large_docs = true;
  auto items = GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  for (const auto& doc : items->docs()) {
    EXPECT_FALSE(
        xpath::EvalPath(*doc, P("/Item/PictureList/Picture")).empty());
    EXPECT_FALSE(
        xpath::EvalPath(*doc, P("/Item/PricesHistory/PriceHistory"))
            .empty());
    size_t bytes = xml::Serialize(*doc).size();
    EXPECT_GT(bytes, 20u * 1024);
  }
}

TEST(ItemsGeneratorTest, SectionsComeFromConfiguredSet) {
  ItemsGenOptions options;
  options.doc_count = 60;
  options.sections = {"A", "B", "C"};
  auto items = GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  std::set<std::string> seen;
  for (const auto& doc : items->docs()) {
    auto nodes = xpath::EvalPath(*doc, P("/Item/Section"));
    ASSERT_EQ(nodes.size(), 1u);
    seen.insert(doc->StringValue(nodes[0]));
  }
  for (const std::string& s : seen) {
    EXPECT_TRUE(s == "A" || s == "B" || s == "C") << s;
  }
}

TEST(ItemsGeneratorTest, ZipfSkewMakesFirstSectionHeavy) {
  ItemsGenOptions options;
  options.doc_count = 400;
  options.section_skew = 1.0;
  auto items = GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  size_t first = 0;
  for (const auto& doc : items->docs()) {
    auto nodes = xpath::EvalPath(*doc, P("/Item/Section"));
    if (doc->StringValue(nodes[0]) == options.sections[0]) ++first;
  }
  // Rank-one Zipf mass with s=1 over 8 values is ~37%; uniform is 12.5%.
  EXPECT_GT(first, items->size() / 5);
}

TEST(ItemsGeneratorTest, GoodFractionControlsTextHits) {
  ItemsGenOptions options;
  options.doc_count = 300;
  options.good_fraction = 0.5;
  auto items = GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  auto pred = xpath::Predicate::Parse(
      "contains(/Item/Description, \"good\")");
  ASSERT_TRUE(pred.ok());
  size_t hits = 0;
  for (const auto& doc : items->docs()) {
    if (pred->Eval(*doc)) ++hits;
  }
  EXPECT_GT(hits, items->size() / 4);
  EXPECT_LT(hits, items->size() * 3 / 4);
}

TEST(ItemsGeneratorTest, BySizeHitsTarget) {
  ItemsGenOptions options;
  options.seed = 9;
  auto items = GenerateItemsBySize(options, 512 * 1024, nullptr);
  ASSERT_TRUE(items.ok());
  uint64_t bytes = 0;
  for (const auto& doc : items->docs()) {
    bytes += xml::Serialize(*doc).size();
  }
  EXPECT_GT(bytes, 512u * 1024 * 7 / 10);
  EXPECT_LT(bytes, 512u * 1024 * 13 / 10);
}

TEST(ItemsGeneratorTest, RejectsEmptySections) {
  ItemsGenOptions options;
  options.sections = {};
  EXPECT_FALSE(GenerateItems(options, nullptr).ok());
}

TEST(StoreGeneratorTest, ProducesValidSdStore) {
  StoreGenOptions options;
  options.item_count = 30;
  options.employee_count = 5;
  auto store = GenerateStore(options, nullptr);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_EQ(store->size(), 1u);
  EXPECT_EQ(store->kind(), xml::RepoKind::kSingleDocument);
  EXPECT_TRUE(store->ValidateHomogeneous().ok());
  const xml::Document& doc = *store->docs()[0];
  EXPECT_EQ(xpath::EvalPath(doc, P("/Store/Items/Item")).size(), 30u);
  EXPECT_EQ(xpath::EvalPath(doc, P("/Store/Employees/Employee")).size(),
            5u);
  EXPECT_EQ(xpath::EvalPath(doc, P("/Store/Sections/Section")).size(),
            options.sections.size());
}

TEST(StoreGeneratorTest, BySizeHitsTarget) {
  StoreGenOptions options;
  options.seed = 5;
  auto store = GenerateStoreBySize(options, 256 * 1024, nullptr);
  ASSERT_TRUE(store.ok());
  size_t bytes = xml::Serialize(*store->docs()[0]).size();
  EXPECT_GT(bytes, 256u * 1024 * 6 / 10);
  EXPECT_LT(bytes, 256u * 1024 * 15 / 10);
}

TEST(XBenchGeneratorTest, ProducesValidArticles) {
  XBenchGenOptions options;
  options.doc_count = 6;
  options.target_doc_bytes = 16 * 1024;
  auto articles = GenerateArticles(options, nullptr);
  ASSERT_TRUE(articles.ok()) << articles.status();
  EXPECT_EQ(articles->size(), 6u);
  EXPECT_TRUE(articles->ValidateHomogeneous().ok());
  for (const auto& doc : articles->docs()) {
    EXPECT_EQ(xpath::EvalPath(*doc, P("/article/prolog")).size(), 1u);
    EXPECT_EQ(xpath::EvalPath(*doc, P("/article/body")).size(), 1u);
    EXPECT_EQ(xpath::EvalPath(*doc, P("/article/epilog")).size(), 1u);
    EXPECT_FALSE(
        xpath::EvalPath(*doc, P("/article/prolog/title")).empty());
  }
}

TEST(XBenchGeneratorTest, DocSizeFollowsTarget) {
  XBenchGenOptions options;
  options.doc_count = 3;
  options.target_doc_bytes = 64 * 1024;
  auto articles = GenerateArticles(options, nullptr);
  ASSERT_TRUE(articles.ok());
  for (const auto& doc : articles->docs()) {
    size_t bytes = xml::Serialize(*doc).size();
    EXPECT_GT(bytes, 32u * 1024);
    EXPECT_LT(bytes, 128u * 1024);
  }
}

TEST(XBenchGeneratorTest, BodyDominatesBytes) {
  XBenchGenOptions options;
  options.doc_count = 2;
  options.target_doc_bytes = 64 * 1024;
  auto articles = GenerateArticles(options, nullptr);
  ASSERT_TRUE(articles.ok());
  const xml::Document& doc = *articles->docs()[0];
  auto body = xpath::EvalPath(doc, P("/article/body"));
  ASSERT_EQ(body.size(), 1u);
  size_t body_bytes = xml::SerializeSubtree(doc, body[0]).size();
  size_t total = xml::Serialize(doc).size();
  EXPECT_GT(body_bytes, total * 2 / 3);
}

}  // namespace
}  // namespace partix::gen
