// Telemetry subsystem: metrics conservation under concurrency, exposition
// formats, deterministic trace spans under ManualClock, and the executor's
// fault-injected span trees.

#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/strings.h"
#include "gen/virtual_store.h"
#include "gtest/gtest.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace partix {
namespace {

using telemetry::HistogramSnapshot;
using telemetry::MetricsRegistry;
using telemetry::MetricsSnapshot;
using telemetry::TraceSpan;
using telemetry::Tracer;

// ---------------------------------------------------------------- metrics

TEST(MetricsTest, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry;  // starts disabled
  telemetry::Counter* counter = registry.GetCounter("c");
  telemetry::Histogram* histogram = registry.GetHistogram("h");
  telemetry::Gauge* gauge = registry.GetGauge("g");
  counter->Add(7);
  histogram->Observe(1.0);
  gauge->Set(3.0);
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(histogram->Snapshot().count, 0u);
  EXPECT_EQ(gauge->Value(), 0.0);
}

// The tests below assert recorded values, so they require the
// compiled-in instrumentation (the default build). Under
// -DPARTIX_TELEMETRY=OFF every record op is a no-op by design.
#ifndef PARTIX_TELEMETRY_DISABLED

TEST(MetricsTest, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  telemetry::Counter* a = registry.GetCounter("dup");
  telemetry::Counter* b = registry.GetCounter("dup");
  EXPECT_EQ(a, b);
  a->Add(2);
  b->Add(3);
  EXPECT_EQ(a->Value(), 5u);
  EXPECT_EQ(registry.GetHistogram("hist"), registry.GetHistogram("hist"));
  EXPECT_EQ(registry.GetGauge("gauge"), registry.GetGauge("gauge"));
}

TEST(MetricsTest, HistogramBucketsAndSum) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  telemetry::Histogram* h = registry.GetHistogram("lat", {1.0, 10.0, 100.0});
  h->Observe(0.5);    // bucket 0
  h->Observe(1.0);    // bucket 0 (le is inclusive)
  h->Observe(5.0);    // bucket 1
  h->Observe(1000.0); // +Inf bucket
  HistogramSnapshot snap = h->Snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 1006.5);
}

// The conservation property the sharded cells must provide: with N
// threads hammering one counter and one histogram while another thread
// snapshots continuously, nothing is lost or double-counted, and the run
// is TSan-clean.
TEST(MetricsTest, ConcurrentRecordingConservesExactly) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  telemetry::Counter* counter = registry.GetCounter("hammered_total");
  telemetry::Histogram* histogram =
      registry.GetHistogram("hammered_ms", {0.5, 2.0, 8.0});

  constexpr size_t kThreads = 8;
  constexpr size_t kOpsPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    uint64_t last = 0;
    while (!stop.load()) {
      MetricsSnapshot snap = registry.Snapshot();
      uint64_t now = snap.counters.at("hammered_total");
      EXPECT_GE(now, last);  // counters are monotone even mid-hammer
      last = now;
    }
  });

  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        counter->Add(1);
        // Values cycle through all buckets; each is an exact multiple of
        // 1e-6 so the fixed-point sum is exact.
        histogram->Observe(static_cast<double>((t + i) % 4));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true);
  snapshotter.join();

  constexpr uint64_t kTotal = kThreads * kOpsPerThread;
  EXPECT_EQ(counter->Value(), kTotal);
  HistogramSnapshot snap = histogram->Snapshot();
  EXPECT_EQ(snap.count, kTotal);
  uint64_t bucket_sum = 0;
  for (uint64_t c : snap.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, kTotal);
  // Sum of 0+1+2+3 per 4 observations, exactly conserved.
  EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(kTotal / 4 * 6));
}

TEST(MetricsTest, JsonAndPrometheusExport) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.GetCounter("partix_widgets_total")->Add(3);
  registry.GetGauge("partix_pool_threads")->Set(4.0);
  telemetry::Histogram* h =
      registry.GetHistogram("partix_widget_ms", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);
  MetricsSnapshot snap = registry.Snapshot();

  const std::string json = snap.ToJson();
  EXPECT_TRUE(Contains(json, "\"partix_widgets_total\": 3")) << json;
  EXPECT_TRUE(Contains(json, "\"counters\"")) << json;
  EXPECT_TRUE(Contains(json, "\"histograms\"")) << json;
  EXPECT_TRUE(Contains(json, "\"+Inf\"")) << json;

  const std::string prom = snap.ToPrometheus();
  EXPECT_TRUE(Contains(prom, "# TYPE partix_widgets_total counter")) << prom;
  EXPECT_TRUE(Contains(prom, "partix_widgets_total 3")) << prom;
  EXPECT_TRUE(Contains(prom, "# TYPE partix_widget_ms histogram")) << prom;
  // Buckets are cumulative: le="10" includes the le="1" observation.
  EXPECT_TRUE(Contains(prom, "partix_widget_ms_bucket{le=\"1\"} 1")) << prom;
  EXPECT_TRUE(Contains(prom, "partix_widget_ms_bucket{le=\"10\"} 2")) << prom;
  EXPECT_TRUE(Contains(prom, "partix_widget_ms_bucket{le=\"+Inf\"} 3"))
      << prom;
  EXPECT_TRUE(Contains(prom, "partix_widget_ms_count 3")) << prom;
  EXPECT_TRUE(Contains(prom, "partix_pool_threads 4")) << prom;
}

TEST(MetricsTest, ResetZeroesEverything) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  telemetry::Counter* c = registry.GetCounter("c");
  telemetry::Histogram* h = registry.GetHistogram("h");
  c->Add(5);
  h->Observe(1.0);
  registry.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Snapshot().count, 0u);
  EXPECT_EQ(h->Snapshot().sum, 0.0);
}

#endif  // PARTIX_TELEMETRY_DISABLED

// ------------------------------------------------------------ clock/trace

TEST(ClockTest, ManualClockDrivesStopwatchExactly) {
  ManualClock clock;
  Stopwatch watch(&clock);
  EXPECT_EQ(watch.ElapsedMillis(), 0.0);
  clock.AdvanceMillis(12.5);
  EXPECT_DOUBLE_EQ(watch.ElapsedMillis(), 12.5);
  watch.Restart();
  EXPECT_EQ(watch.ElapsedMillis(), 0.0);
  clock.AdvanceMicros(250);
  EXPECT_DOUBLE_EQ(watch.ElapsedMicros(), 250.0);
}

TEST(TraceTest, TracerMeasuresAgainstEpoch) {
  ManualClock clock;
  clock.AdvanceMillis(100.0);  // epoch is wherever the clock is now
  Tracer tracer(&clock);
  EXPECT_EQ(tracer.NowMs(), 0.0);
  clock.AdvanceMillis(3.25);
  EXPECT_DOUBLE_EQ(tracer.NowMs(), 3.25);
}

TEST(TraceTest, FindTagAndTreeSize) {
  TraceSpan root("query");
  root.AddTag("composition", "union");
  TraceSpan dispatch("dispatch");
  TraceSpan sub("f_CD@node0");
  sub.children.emplace_back("attempt 1@node0");
  dispatch.children.push_back(std::move(sub));
  root.children.push_back(std::move(dispatch));

  EXPECT_EQ(root.TreeSize(), 4u);
  EXPECT_EQ(root.Tag("composition"), "union");
  EXPECT_EQ(root.Tag("absent"), "");
  ASSERT_NE(root.Find("f_CD@node0"), nullptr);
  ASSERT_NE(root.Find("attempt"), nullptr);
  EXPECT_EQ(root.Find("nonexistent"), nullptr);

  const std::string rendered = telemetry::RenderSpanTree(root);
  EXPECT_TRUE(Contains(rendered, "query")) << rendered;
  EXPECT_TRUE(Contains(rendered, "f_CD@node0")) << rendered;
  EXPECT_TRUE(Contains(rendered, "composition=union")) << rendered;
}

// ------------------------------------------------- traced execution (e2e)

/// Items fragmented by Section over 4 nodes, replication factor 2
/// (replica r of fragment i lives at node (i + r) mod 4) — the
/// failover_test.cc topology.
class TracedExecutionTest : public ::testing::Test {
 protected:
  TracedExecutionTest()
      : cluster_(4, xdb::DatabaseOptions(), middleware::NetworkModel()),
        publisher_(&cluster_, &catalog_),
        service_(&cluster_, &catalog_) {
    gen::ItemsGenOptions options;
    options.doc_count = 40;
    options.seed = 11;
    options.sections = {"CD", "DVD", "BOOK", "TOY"};
    auto items = gen::GenerateItems(options, nullptr);
    EXPECT_TRUE(items.ok());
    frag::FragmentationSchema schema;
    schema.collection = "items";
    for (const std::string& s : options.sections) {
      auto mu = xpath::Conjunction::Parse("/Item/Section = \"" + s + "\"");
      EXPECT_TRUE(mu.ok());
      schema.fragments.emplace_back(frag::HorizontalDef{"f_" + s, *mu});
    }
    EXPECT_TRUE(publisher_
                    .PublishFragmented(*items, schema, {},
                                       /*replication_factor=*/2)
                    .ok());
  }

  middleware::DistributionCatalog catalog_;
  middleware::ClusterSim cluster_;
  middleware::DataPublisher publisher_;
  middleware::QueryService service_;
};

TEST_F(TracedExecutionTest, SpanTreeCoversPhasesAndSubQueries) {
  middleware::ExecutionOptions options;
  options.trace = true;
  options.parallelism = 4;
  auto result =
      service_.Execute("count(collection(\"items\")/Item)", options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->traced);

  const TraceSpan& root = result->trace;
  EXPECT_EQ(root.name, "query");
  ASSERT_NE(root.Find("decompose"), nullptr);
  ASSERT_NE(root.Find("compose"), nullptr);
  const TraceSpan* dispatch = root.Find("dispatch");
  ASSERT_NE(dispatch, nullptr);
  EXPECT_EQ(dispatch->children.size(), 4u);  // one span per fragment
  const std::regex canonical("f_[A-Z]+@node[0-9]+");
  for (const TraceSpan& sub : dispatch->children) {
    EXPECT_TRUE(std::regex_match(sub.name, canonical)) << sub.name;
    EXPECT_EQ(sub.Tag("status"), "ok") << sub.name;
    ASSERT_FALSE(sub.children.empty()) << sub.name;
    EXPECT_TRUE(Contains(sub.children[0].name, "attempt 1@node"))
        << sub.children[0].name;
  }

  // The phases nest inside the root span's window and account for (at
  // least almost) all of it.
  double covered = 0.0;
  for (const TraceSpan& phase : root.children) {
    EXPECT_GE(phase.start_ms, 0.0);
    EXPECT_LE(phase.start_ms + phase.duration_ms, root.duration_ms + 1e-6);
    covered += phase.duration_ms;
  }
  EXPECT_GE(covered, 0.0);
  EXPECT_LE(covered, root.duration_ms + 1e-6);
}

TEST_F(TracedExecutionTest, FaultInjectedTraceShowsRetriesAndFailover) {
  // Node 1 (f_DVD primary) rejects its first two engine requests with a
  // transient error, then heals: the f_DVD sub-query must retry and fail
  // over to its replica on node 2, and the span tree must say so.
  middleware::FaultProfile profile;
  profile.fail_first_requests = 2;
  cluster_.SetFaultProfile(1, profile);

  middleware::ExecutionOptions options;
  options.trace = true;
  options.retry.max_attempts = 4;
  options.retry.base_backoff_ms = 0.01;
  options.retry.max_backoff_ms = 0.05;
  options.retry.seed = 42;
  auto result =
      service_.Execute("count(collection(\"items\")/Item)", options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->traced);
  EXPECT_GE(result->retries, 1u);
  EXPECT_GE(result->failovers, 1u);

  const TraceSpan* dispatch = result->trace.Find("dispatch");
  ASSERT_NE(dispatch, nullptr);
  const TraceSpan* dvd = dispatch->Find("f_DVD@");
  ASSERT_NE(dvd, nullptr);
  // Canonical label names the node that finally served the fragment.
  EXPECT_TRUE(Contains(dvd->name, "f_DVD@node")) << dvd->name;
  EXPECT_GE(dvd->children.size(), 2u);  // >= 2 attempts recorded
  EXPECT_NE(std::stoul(dvd->Tag("attempts")), 0u);
  // The first attempt hit node1 and failed; a later attempt carries the
  // failover tag and an OK status on another node.
  const TraceSpan* first = dvd->Find("attempt 1@node1");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->Tag("status"), "unavailable");
  bool failed_over_ok = false;
  for (const TraceSpan& child : dvd->children) {
    if (child.Tag("failover") == "true" && child.Tag("status") == "ok") {
      failed_over_ok = true;
    }
  }
  EXPECT_TRUE(failed_over_ok) << telemetry::RenderSpanTree(*dvd);
  EXPECT_EQ(dvd->Tag("status"), "ok");
  EXPECT_NE(dvd->Tag("failovers"), "0");
}

TEST_F(TracedExecutionTest, ManualClockMakesTraceDeterministic) {
  // With an injected ManualClock that nothing advances, every span start
  // and duration is exactly zero: the trace depends only on the clock.
  ManualClock clock;
  service_.set_clock(&clock);
  middleware::ExecutionOptions options;
  options.trace = true;
  auto result =
      service_.Execute("count(collection(\"items\")/Item)", options);
  service_.set_clock(Clock::Monotonic());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->wall_ms, 0.0);
  std::vector<const TraceSpan*> stack{&result->trace};
  while (!stack.empty()) {
    const TraceSpan* span = stack.back();
    stack.pop_back();
    EXPECT_EQ(span->start_ms, 0.0) << span->name;
    EXPECT_EQ(span->duration_ms, 0.0) << span->name;
    for (const TraceSpan& child : span->children) stack.push_back(&child);
  }
}

TEST_F(TracedExecutionTest, ExplainAnalyzeRendersPlanAndSpans) {
  auto text = service_.ExplainAnalyze("count(collection(\"items\")/Item)");
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_TRUE(Contains(*text, "composition:")) << *text;
  EXPECT_TRUE(Contains(*text, "execution (wall ")) << *text;
  EXPECT_TRUE(Contains(*text, "query")) << *text;
  EXPECT_TRUE(Contains(*text, "dispatch")) << *text;
  EXPECT_TRUE(Contains(*text, "@node")) << *text;
}

}  // namespace
}  // namespace partix
