// Compile-once pipeline tests (see docs/query-compilation.md):
//
//   - CompiledQuery: one parse, collection discovery, FromAst reuse
//   - engine plan cache: hit/miss/eviction accounting, DDL invalidation,
//     capacity-0 ablation, parse failures never cached
//   - prepared-vs-ad-hoc differential: byte-identical answers over every
//     workload query under every fragmentation design
//   - executor: one Prepare per (sub-query, node), reused across
//     fault-injected retries
//   - parse-once contract: a middleware execution parses on the
//     coordinator thread exactly once
//   - concurrency: parallel Prepare/ExecutePrepared through a
//     LocalXdbDriver (exercised under TSan by scripts/check.sh)

#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "gen/virtual_store.h"
#include "gen/xbench.h"
#include "gtest/gtest.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "workload/queries.h"
#include "workload/schemas.h"
#include "xquery/compiled_query.h"
#include "xquery/parser.h"

namespace partix {
namespace {

constexpr const char* kCountQuery = "count(collection(\"items\")/Item)";
constexpr const char* kScanQuery =
    "for $i in collection(\"items\")/Item "
    "where $i/Section = \"CD\" return $i/Code";

// --- CompiledQuery -------------------------------------------------------

TEST(CompiledQueryTest, CompileCollectsReferencedCollections) {
  auto compiled = xquery::CompiledQuery::Compile(kScanQuery);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_EQ((*compiled)->text(), kScanQuery);
  ASSERT_EQ((*compiled)->collections().size(), 1u);
  EXPECT_EQ((*compiled)->collections()[0], "items");
  EXPECT_FALSE((*compiled)->has_dynamic_collections());
}

TEST(CompiledQueryTest, CompileRejectsMalformedQuery) {
  EXPECT_FALSE(xquery::CompiledQuery::Compile("for $x in").ok());
}

TEST(CompiledQueryTest, CompileParsesExactlyOnce) {
  const uint64_t before = xquery::ThreadParseCount();
  ASSERT_TRUE(xquery::CompiledQuery::Compile(kCountQuery).ok());
  EXPECT_EQ(xquery::ThreadParseCount() - before, 1u);
}

TEST(CompiledQueryTest, FromAstPaysNoParse) {
  auto compiled = xquery::CompiledQuery::Compile(kCountQuery);
  ASSERT_TRUE(compiled.ok());
  auto ast = xquery::CloneExpr((*compiled)->ast());
  const uint64_t before = xquery::ThreadParseCount();
  auto reused = xquery::CompiledQuery::FromAst(kCountQuery, std::move(ast));
  EXPECT_EQ(xquery::ThreadParseCount(), before);
  ASSERT_NE(reused, nullptr);
  EXPECT_EQ(reused->compile_ms(), 0.0);
  ASSERT_EQ(reused->collections().size(), 1u);
  EXPECT_EQ(reused->collections()[0], "items");
}

// --- engine plan cache ---------------------------------------------------

class PlanCacheDbTest : public ::testing::Test {
 protected:
  static xdb::DatabaseOptions Options(size_t capacity) {
    xdb::DatabaseOptions options;
    options.plan_cache_capacity = capacity;
    return options;
  }

  explicit PlanCacheDbTest(size_t capacity = 128) : db_(Options(capacity)) {
    EXPECT_TRUE(db_.CreateCollection("items").ok());
    EXPECT_TRUE(
        db_.StoreSerialized(
               "items", "d0",
               "<Item><Code>1</Code><Section>CD</Section></Item>")
            .ok());
    EXPECT_TRUE(
        db_.StoreSerialized(
               "items", "d1",
               "<Item><Code>2</Code><Section>DVD</Section></Item>")
            .ok());
  }

  xdb::Database db_;
};

TEST_F(PlanCacheDbTest, PrepareMissesThenHits) {
  auto first = db_.Prepare(kCountQuery);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->cache_hit);
  ASSERT_NE(first->plan, nullptr);

  auto second = db_.Prepare(kCountQuery);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->compile_ms, 0.0);
  // Same shared plan object, not a recompilation.
  EXPECT_EQ(second->plan.get(), first->plan.get());

  EXPECT_EQ(db_.plan_cache_stats().hits, 1u);
  EXPECT_EQ(db_.plan_cache_stats().misses, 1u);
  EXPECT_EQ(db_.plan_cache_size(), 1u);
}

TEST_F(PlanCacheDbTest, ExecuteReportsCacheAccounting) {
  auto cold = db_.Execute(kCountQuery);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->metrics.plan_cache_misses, 1u);
  EXPECT_EQ(cold->metrics.plan_cache_hits, 0u);

  auto warm = db_.Execute(kCountQuery);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->metrics.plan_cache_hits, 1u);
  EXPECT_EQ(warm->metrics.plan_cache_misses, 0u);
  // The hit skipped parse + analysis entirely.
  EXPECT_EQ(warm->metrics.compile_ms, 0.0);
  EXPECT_EQ(warm->serialized, cold->serialized);
}

TEST_F(PlanCacheDbTest, PreparedReexecutionSkipsParsing) {
  auto prepared = db_.Prepare(kScanQuery);
  ASSERT_TRUE(prepared.ok());
  const uint64_t before = xquery::ThreadParseCount();
  for (int i = 0; i < 3; ++i) {
    auto result = db_.ExecutePrepared(*prepared->plan);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->serialized, "<Code>1</Code>");
  }
  EXPECT_EQ(xquery::ThreadParseCount(), before);
}

TEST_F(PlanCacheDbTest, DdlInvalidatesCache) {
  // The fixture's own CreateCollection calls already counted some.
  const uint64_t base = db_.plan_cache_stats().invalidations;
  ASSERT_TRUE(db_.Prepare(kCountQuery).ok());
  ASSERT_EQ(db_.plan_cache_size(), 1u);

  ASSERT_TRUE(db_.CreateCollection("other").ok());
  EXPECT_EQ(db_.plan_cache_size(), 0u);
  EXPECT_EQ(db_.plan_cache_stats().invalidations, base + 1);

  auto after = db_.Prepare(kCountQuery);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit);

  ASSERT_TRUE(db_.DropCollection("other").ok());
  EXPECT_EQ(db_.plan_cache_size(), 0u);
  EXPECT_EQ(db_.plan_cache_stats().invalidations, base + 2);
}

TEST_F(PlanCacheDbTest, FailedDdlKeepsCache) {
  ASSERT_TRUE(db_.Prepare(kCountQuery).ok());
  EXPECT_EQ(db_.CreateCollection("items").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db_.DropCollection("nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(db_.plan_cache_size(), 1u);
}

TEST_F(PlanCacheDbTest, ParseErrorsAreNeverCached) {
  EXPECT_FALSE(db_.Prepare("for $x in").ok());
  EXPECT_FALSE(db_.Prepare("for $x in").ok());
  EXPECT_EQ(db_.plan_cache_size(), 0u);
}

class TinyPlanCacheDbTest : public PlanCacheDbTest {
 protected:
  TinyPlanCacheDbTest() : PlanCacheDbTest(2) {}
};

TEST_F(TinyPlanCacheDbTest, CapacityEvictsLeastRecentlyUsed) {
  const std::string q1 = "count(collection(\"items\")/Item)";
  const std::string q2 = "collection(\"items\")/Item/Code";
  const std::string q3 = "collection(\"items\")/Item/Section";
  ASSERT_TRUE(db_.Prepare(q1).ok());
  ASSERT_TRUE(db_.Prepare(q2).ok());
  ASSERT_TRUE(db_.Prepare(q1).ok());  // touch q1: q2 becomes LRU
  ASSERT_TRUE(db_.Prepare(q3).ok());  // evicts q2
  EXPECT_EQ(db_.plan_cache_size(), 2u);
  EXPECT_EQ(db_.plan_cache_stats().evictions, 1u);
  EXPECT_TRUE(db_.Prepare(q1)->cache_hit);
  EXPECT_FALSE(db_.Prepare(q2)->cache_hit);
}

class DisabledPlanCacheDbTest : public PlanCacheDbTest {
 protected:
  DisabledPlanCacheDbTest() : PlanCacheDbTest(0) {}
};

TEST_F(DisabledPlanCacheDbTest, CapacityZeroDisablesCaching) {
  ASSERT_TRUE(db_.Prepare(kCountQuery).ok());
  auto again = db_.Prepare(kCountQuery);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->cache_hit);
  EXPECT_EQ(db_.plan_cache_size(), 0u);
  EXPECT_EQ(db_.plan_cache_stats().hits, 0u);
  // Disabled cache still executes correctly.
  auto result = db_.Execute(kCountQuery);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->serialized, "2");
}

// --- concurrency through the driver (TSan coverage) ----------------------

TEST(PlanCacheConcurrencyTest, ConcurrentPrepareAndExecutePrepared) {
  middleware::ClusterSim cluster(1, xdb::DatabaseOptions(),
                                 middleware::NetworkModel());
  ASSERT_TRUE(cluster.database(0).CreateCollection("items").ok());
  ASSERT_TRUE(cluster.database(0)
                  .StoreSerialized(
                      "items", "d0",
                      "<Item><Code>1</Code><Section>CD</Section></Item>")
                  .ok());
  auto compiled = xquery::CompiledQuery::Compile(kCountQuery);
  ASSERT_TRUE(compiled.ok());

  constexpr int kThreads = 4;
  constexpr int kIters = 25;
  std::vector<std::thread> threads;
  std::vector<int> ok_counts(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      middleware::Driver& driver = cluster.node(0);
      for (int i = 0; i < kIters; ++i) {
        auto handle = driver.Prepare(*compiled);
        if (!handle.ok()) continue;
        auto result = driver.ExecutePrepared(**handle);
        if (result.ok() && result->serialized == "1") ++ok_counts[t];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(ok_counts[t], kIters);
}

// --- executor: prepare once per (sub-query, node) ------------------------

TEST(ExecutorPrepareReuseTest, RetriesReusePreparedHandle) {
  middleware::ClusterSim cluster(1, xdb::DatabaseOptions(),
                                 middleware::NetworkModel());
  ASSERT_TRUE(cluster.database(0).CreateCollection("items").ok());
  ASSERT_TRUE(cluster.database(0)
                  .StoreSerialized(
                      "items", "d0",
                      "<Item><Code>1</Code><Section>CD</Section></Item>")
                  .ok());
  auto compiled = xquery::CompiledQuery::Compile(kCountQuery);
  ASSERT_TRUE(compiled.ok());

  middleware::SubQuery sub;
  sub.fragment = "items";
  sub.node = 0;
  sub.query = (*compiled)->text();
  sub.compiled = *compiled;

  // First two engine requests rejected as transient; third succeeds.
  middleware::FaultProfile profile;
  profile.fail_first_requests = 2;
  cluster.SetFaultProfile(0, profile);

  middleware::DispatchOptions options;
  options.retry.max_attempts = 3;
  options.retry.base_backoff_ms = 0.0;
  std::vector<middleware::SubQueryOutcome> outcomes;
  cluster.executor().Dispatch({sub}, options, &outcomes);

  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].result.ok()) << outcomes[0].result.status();
  EXPECT_EQ(outcomes[0].attempts, 3u);
  // One Prepare served all three attempts: fault recovery never
  // recompiled, and preparation consumed no fault-injection budget.
  EXPECT_EQ(outcomes[0].prepares, 1u);
  EXPECT_EQ(outcomes[0].plan_cache_misses, 1u);
  EXPECT_EQ(outcomes[0].plan_cache_hits, 0u);
  EXPECT_EQ(outcomes[0].result->serialized, "1");
}

// --- middleware differential: prepared vs ad-hoc -------------------------

enum class Design { kHorizontal, kVertical, kHybrid1, kHybrid2 };

class PreparedVsAdhocP : public ::testing::TestWithParam<Design> {};

TEST_P(PreparedVsAdhocP, ByteIdenticalAnswers) {
  xml::Collection data;
  frag::FragmentationSchema schema;
  std::vector<workload::QuerySpec> queries;
  std::vector<std::string> sections = {"CD", "DVD", "BOOK", "TOY"};

  switch (GetParam()) {
    case Design::kHorizontal: {
      gen::ItemsGenOptions options;
      options.doc_count = 40;
      options.seed = 71;
      options.sections = sections;
      auto items = gen::GenerateItems(options, nullptr);
      ASSERT_TRUE(items.ok());
      data = std::move(*items);
      auto s = workload::SectionHorizontalSchema("items", sections, 3);
      ASSERT_TRUE(s.ok());
      schema = std::move(*s);
      queries = workload::HorizontalQueries("items");
      break;
    }
    case Design::kVertical: {
      gen::XBenchGenOptions options;
      options.doc_count = 8;
      options.target_doc_bytes = 3000;
      options.seed = 72;
      auto articles = gen::GenerateArticles(options, nullptr);
      ASSERT_TRUE(articles.ok());
      data = std::move(*articles);
      auto s = workload::ArticleVerticalSchema("papers");
      ASSERT_TRUE(s.ok());
      schema = std::move(*s);
      queries = workload::VerticalQueries("papers");
      break;
    }
    case Design::kHybrid1:
    case Design::kHybrid2: {
      gen::StoreGenOptions options;
      options.item_count = 40;
      options.seed = 73;
      options.sections = sections;
      options.large_items = false;
      auto store = gen::GenerateStore(options, nullptr);
      ASSERT_TRUE(store.ok());
      data = std::move(*store);
      auto s = workload::StoreHybridSchema(
          "store", sections, 3,
          GetParam() == Design::kHybrid1
              ? frag::HybridMode::kOneDocPerSubtree
              : frag::HybridMode::kSinglePrunedDoc);
      ASSERT_TRUE(s.ok());
      schema = std::move(*s);
      queries = workload::HybridQueries("store");
      break;
    }
  }

  middleware::DistributionCatalog catalog;
  middleware::ClusterSim cluster(schema.fragments.size(),
                                 xdb::DatabaseOptions(),
                                 middleware::NetworkModel());
  middleware::DataPublisher publisher(&cluster, &catalog);
  ASSERT_TRUE(publisher.PublishFragmented(data, schema).ok());
  middleware::QueryService service(&cluster, &catalog);

  for (const workload::QuerySpec& q : queries) {
    auto plan = service.decomposer().Decompose(q.text);
    ASSERT_TRUE(plan.ok()) << q.id << ": " << plan.status();
    ASSERT_NE(plan->compiled, nullptr) << q.id;
    for (const middleware::SubQuery& sub : plan->subqueries) {
      EXPECT_NE(sub.compiled, nullptr) << q.id << " " << sub.fragment;
    }

    // Ad-hoc control: the same plan with every compiled artifact
    // stripped, forcing the string execution path end to end.
    middleware::DistributedPlan adhoc = *plan;
    adhoc.compiled = nullptr;
    for (middleware::SubQuery& sub : adhoc.subqueries) {
      sub.compiled = nullptr;
    }

    auto prepared = service.ExecutePlan(*plan);
    ASSERT_TRUE(prepared.ok()) << q.id << ": " << prepared.status();
    auto ad_hoc = service.ExecutePlan(adhoc);
    ASSERT_TRUE(ad_hoc.ok()) << q.id << ": " << ad_hoc.status();

    // Identical plan, identical outcome order, identical composition:
    // the two paths must agree to the byte.
    EXPECT_EQ(prepared->serialized, ad_hoc->serialized) << q.id;
    EXPECT_EQ(prepared->result_items, ad_hoc->result_items) << q.id;

    // Every sub-query of the prepared run went through Prepare; both
    // paths account one cache event per executed sub-query.
    EXPECT_EQ(prepared->plan_cache_hits + prepared->plan_cache_misses,
              prepared->subqueries.size())
        << q.id;
    EXPECT_EQ(ad_hoc->plan_cache_hits + ad_hoc->plan_cache_misses,
              ad_hoc->subqueries.size())
        << q.id;

    // Re-running the prepared plan hits every node's cache: no compile
    // cost the second time around.
    auto warm = service.ExecutePlan(*plan);
    ASSERT_TRUE(warm.ok()) << q.id;
    EXPECT_EQ(warm->plan_cache_hits, warm->subqueries.size()) << q.id;
    EXPECT_EQ(warm->plan_cache_misses, 0u) << q.id;
    EXPECT_EQ(warm->compile_ms, 0.0) << q.id;
    EXPECT_EQ(warm->serialized, prepared->serialized) << q.id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Designs, PreparedVsAdhocP,
    ::testing::Values(Design::kHorizontal, Design::kVertical,
                      Design::kHybrid1, Design::kHybrid2),
    [](const ::testing::TestParamInfo<Design>& info) {
      switch (info.param) {
        case Design::kHorizontal:
          return "Horizontal";
        case Design::kVertical:
          return "Vertical";
        case Design::kHybrid1:
          return "HybridFragMode1";
        case Design::kHybrid2:
          return "HybridFragMode2";
      }
      return "Unknown";
    });

// --- ExplainAnalyze surfaces compile accounting --------------------------

TEST(ExplainAnalyzePlanCacheTest, SurfacesCompileAndCacheTraffic) {
  std::vector<std::string> sections = {"CD", "DVD"};
  gen::ItemsGenOptions gen_options;
  gen_options.doc_count = 10;
  gen_options.seed = 75;
  gen_options.sections = sections;
  auto items = gen::GenerateItems(gen_options, nullptr);
  ASSERT_TRUE(items.ok());
  auto schema = workload::SectionHorizontalSchema("items", sections, 2);
  ASSERT_TRUE(schema.ok());

  middleware::DistributionCatalog catalog;
  middleware::ClusterSim cluster(2, xdb::DatabaseOptions(),
                                 middleware::NetworkModel());
  middleware::DataPublisher publisher(&cluster, &catalog);
  ASSERT_TRUE(publisher.PublishFragmented(*items, *schema).ok());
  middleware::QueryService service(&cluster, &catalog);

  const std::string query = "count(collection(\"items\")/Item)";
  auto cold = service.ExplainAnalyze(query);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_NE(cold->find("compile "), std::string::npos) << *cold;
  EXPECT_NE(cold->find("plan cache 0 hit(s) / 2 miss(es)"),
            std::string::npos)
      << *cold;
  EXPECT_NE(cold->find(": plan cache miss"), std::string::npos) << *cold;
  EXPECT_NE(cold->find("prepare"), std::string::npos) << *cold;

  // The second run is served from every node's plan cache.
  auto warm = service.ExplainAnalyze(query);
  ASSERT_TRUE(warm.ok());
  EXPECT_NE(warm->find("compile 0 ms"), std::string::npos) << *warm;
  EXPECT_NE(warm->find("plan cache 2 hit(s) / 0 miss(es)"),
            std::string::npos)
      << *warm;
  EXPECT_NE(warm->find(": plan cache hit"), std::string::npos) << *warm;
}

// --- parse-once contract across the whole middleware ---------------------

TEST(ParseOnceTest, MiddlewareExecutionParsesExactlyOnce) {
  std::vector<std::string> sections = {"CD", "DVD", "BOOK", "TOY"};
  gen::ItemsGenOptions options;
  options.doc_count = 30;
  options.seed = 74;
  options.sections = sections;
  auto items = gen::GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  auto schema = workload::SectionHorizontalSchema("items", sections, 4);
  ASSERT_TRUE(schema.ok());

  middleware::DistributionCatalog catalog;
  middleware::ClusterSim cluster(4, xdb::DatabaseOptions(),
                                 middleware::NetworkModel());
  middleware::DataPublisher publisher(&cluster, &catalog);
  ASSERT_TRUE(publisher.PublishFragmented(*items, *schema).ok());
  middleware::QueryService service(&cluster, &catalog);

  for (const workload::QuerySpec& q :
       workload::HorizontalQueries("items")) {
    const uint64_t before = xquery::ThreadParseCount();
    auto result = service.Execute(q.text);
    ASSERT_TRUE(result.ok()) << q.id << ": " << result.status();
    // Sequential dispatch (parallelism 1) runs every sub-query on this
    // thread, so any re-parse would show up in the delta.
    EXPECT_EQ(xquery::ThreadParseCount() - before, 1u) << q.id;
  }
}

}  // namespace
}  // namespace partix
