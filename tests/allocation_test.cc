#include "partix/allocation.h"

#include <algorithm>

#include "fragmentation/fragmenter.h"
#include "gen/virtual_store.h"
#include "gtest/gtest.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "workload/schemas.h"

namespace partix::middleware {
namespace {

std::vector<xml::Collection> MakeFragments() {
  gen::ItemsGenOptions options;
  options.doc_count = 120;
  options.seed = 21;
  options.section_skew = 1.0;  // strongly skewed fragment sizes
  auto items = gen::GenerateItems(options, nullptr);
  EXPECT_TRUE(items.ok());
  auto schema =
      workload::SectionHorizontalSchema("items", options.sections, 8);
  EXPECT_TRUE(schema.ok());
  auto fragments = frag::ApplyFragmentation(*items, *schema);
  EXPECT_TRUE(fragments.ok());
  return std::move(*fragments);
}

TEST(AllocationTest, RoundRobinCycles) {
  auto fragments = MakeFragments();
  auto placements =
      ComputePlacements(fragments, 3, PlacementStrategy::kRoundRobin);
  ASSERT_TRUE(placements.ok());
  ASSERT_EQ(placements->size(), fragments.size());
  for (size_t i = 0; i < placements->size(); ++i) {
    EXPECT_EQ((*placements)[i].node, i % 3);
    EXPECT_EQ((*placements)[i].fragment, fragments[i].name());
  }
}

TEST(AllocationTest, SizeBalancedBeatsRoundRobinOnSkewedData) {
  auto fragments = MakeFragments();
  auto rr =
      ComputePlacements(fragments, 3, PlacementStrategy::kRoundRobin);
  auto lpt =
      ComputePlacements(fragments, 3, PlacementStrategy::kSizeBalanced);
  ASSERT_TRUE(rr.ok() && lpt.ok());
  auto rr_loads = PlacementLoads(fragments, *rr, 3);
  auto lpt_loads = PlacementLoads(fragments, *lpt, 3);
  uint64_t rr_max = *std::max_element(rr_loads.begin(), rr_loads.end());
  uint64_t lpt_max = *std::max_element(lpt_loads.begin(), lpt_loads.end());
  EXPECT_LE(lpt_max, rr_max);
  // All bytes placed in both cases.
  uint64_t total = 0;
  for (const auto& frag : fragments) total += frag.ApproxBytes();
  uint64_t rr_total = 0;
  for (uint64_t l : rr_loads) rr_total += l;
  EXPECT_EQ(rr_total, total);
}

TEST(AllocationTest, EveryFragmentPlacedExactlyOnce) {
  auto fragments = MakeFragments();
  auto placements =
      ComputePlacements(fragments, 2, PlacementStrategy::kSizeBalanced);
  ASSERT_TRUE(placements.ok());
  ASSERT_EQ(placements->size(), fragments.size());
  for (const xml::Collection& frag : fragments) {
    int hits = 0;
    for (const FragmentPlacement& p : *placements) {
      if (p.fragment == frag.name()) ++hits;
    }
    EXPECT_EQ(hits, 1) << frag.name();
  }
}

TEST(AllocationTest, RejectsDegenerateInputs) {
  auto fragments = MakeFragments();
  EXPECT_FALSE(
      ComputePlacements(fragments, 0, PlacementStrategy::kRoundRobin)
          .ok());
  EXPECT_FALSE(ComputePlacements({}, 3, PlacementStrategy::kRoundRobin)
                   .ok());
}

TEST(AllocationTest, FewerNodesThanFragmentsStillAnswersQueries) {
  gen::ItemsGenOptions options;
  options.doc_count = 60;
  options.seed = 22;
  auto items = gen::GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  auto schema =
      workload::SectionHorizontalSchema("items", options.sections, 8);
  ASSERT_TRUE(schema.ok());
  auto fragments = frag::ApplyFragmentation(*items, *schema);
  ASSERT_TRUE(fragments.ok());
  auto placements =
      ComputePlacements(*fragments, 3, PlacementStrategy::kSizeBalanced);
  ASSERT_TRUE(placements.ok());

  DistributionCatalog catalog;
  ClusterSim cluster(3, xdb::DatabaseOptions(), NetworkModel());
  DataPublisher publisher(&cluster, &catalog);
  ASSERT_TRUE(
      publisher.PublishFragmented(*items, *schema, *placements).ok());
  QueryService service(&cluster, &catalog);
  auto result = service.Execute("count(collection(\"items\")/Item)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->serialized, std::to_string(items->size()));
  EXPECT_EQ(result->subqueries.size(), 8u);  // 8 fragments over 3 nodes
}

}  // namespace
}  // namespace partix::middleware
