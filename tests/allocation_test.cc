#include "partix/allocation.h"

#include <algorithm>

#include "fragmentation/fragmenter.h"
#include "gen/virtual_store.h"
#include "gtest/gtest.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "workload/schemas.h"

namespace partix::middleware {
namespace {

std::vector<xml::Collection> MakeFragments() {
  gen::ItemsGenOptions options;
  options.doc_count = 120;
  options.seed = 21;
  options.section_skew = 1.0;  // strongly skewed fragment sizes
  auto items = gen::GenerateItems(options, nullptr);
  EXPECT_TRUE(items.ok());
  auto schema =
      workload::SectionHorizontalSchema("items", options.sections, 8);
  EXPECT_TRUE(schema.ok());
  auto fragments = frag::ApplyFragmentation(*items, *schema);
  EXPECT_TRUE(fragments.ok());
  return std::move(*fragments);
}

TEST(AllocationTest, RoundRobinCycles) {
  auto fragments = MakeFragments();
  auto placements =
      ComputePlacements(fragments, 3, PlacementStrategy::kRoundRobin);
  ASSERT_TRUE(placements.ok());
  ASSERT_EQ(placements->size(), fragments.size());
  for (size_t i = 0; i < placements->size(); ++i) {
    EXPECT_EQ((*placements)[i].node, i % 3);
    EXPECT_EQ((*placements)[i].fragment, fragments[i].name());
  }
}

TEST(AllocationTest, SizeBalancedBeatsRoundRobinOnSkewedData) {
  auto fragments = MakeFragments();
  auto rr =
      ComputePlacements(fragments, 3, PlacementStrategy::kRoundRobin);
  auto lpt =
      ComputePlacements(fragments, 3, PlacementStrategy::kSizeBalanced);
  ASSERT_TRUE(rr.ok() && lpt.ok());
  auto rr_loads = PlacementLoads(fragments, *rr, 3);
  auto lpt_loads = PlacementLoads(fragments, *lpt, 3);
  uint64_t rr_max = *std::max_element(rr_loads.begin(), rr_loads.end());
  uint64_t lpt_max = *std::max_element(lpt_loads.begin(), lpt_loads.end());
  EXPECT_LE(lpt_max, rr_max);
  // All bytes placed in both cases.
  uint64_t total = 0;
  for (const auto& frag : fragments) total += frag.ApproxBytes();
  uint64_t rr_total = 0;
  for (uint64_t l : rr_loads) rr_total += l;
  EXPECT_EQ(rr_total, total);
}

TEST(AllocationTest, EveryFragmentPlacedExactlyOnce) {
  auto fragments = MakeFragments();
  auto placements =
      ComputePlacements(fragments, 2, PlacementStrategy::kSizeBalanced);
  ASSERT_TRUE(placements.ok());
  ASSERT_EQ(placements->size(), fragments.size());
  for (const xml::Collection& frag : fragments) {
    int hits = 0;
    for (const FragmentPlacement& p : *placements) {
      if (p.fragment == frag.name()) ++hits;
    }
    EXPECT_EQ(hits, 1) << frag.name();
  }
}

TEST(AllocationTest, RejectsDegenerateInputs) {
  auto fragments = MakeFragments();
  EXPECT_FALSE(
      ComputePlacements(fragments, 0, PlacementStrategy::kRoundRobin)
          .ok());
  EXPECT_FALSE(ComputePlacements({}, 3, PlacementStrategy::kRoundRobin)
                   .ok());
  // Replication must fit the cluster: rf = 0 and rf > node_count fail.
  EXPECT_FALSE(
      ComputePlacements(fragments, 3, PlacementStrategy::kRoundRobin, 0)
          .ok());
  EXPECT_FALSE(
      ComputePlacements(fragments, 3, PlacementStrategy::kRoundRobin, 4)
          .ok());
}

TEST(AllocationTest, RoundRobinReplicasLandOnDistinctConsecutiveNodes) {
  auto fragments = MakeFragments();
  auto placements =
      ComputePlacements(fragments, 4, PlacementStrategy::kRoundRobin, 3);
  ASSERT_TRUE(placements.ok());
  for (size_t i = 0; i < placements->size(); ++i) {
    const FragmentPlacement& p = (*placements)[i];
    EXPECT_EQ(p.node, i % 4);
    ASSERT_EQ(p.backups.size(), 2u);
    EXPECT_EQ(p.backups[0], (i + 1) % 4);
    EXPECT_EQ(p.backups[1], (i + 2) % 4);
    // AllNodes(): primary first, all distinct.
    std::vector<size_t> all = p.AllNodes();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0], p.node);
    std::sort(all.begin(), all.end());
    EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  }
}

TEST(AllocationTest, SizeBalancedReplicasAreDistinctAndCountedInLoads) {
  auto fragments = MakeFragments();
  auto placements =
      ComputePlacements(fragments, 3, PlacementStrategy::kSizeBalanced, 2);
  ASSERT_TRUE(placements.ok());
  uint64_t total = 0;
  for (const xml::Collection& frag : fragments) total += frag.ApproxBytes();
  for (const FragmentPlacement& p : *placements) {
    ASSERT_EQ(p.backups.size(), 1u);
    EXPECT_NE(p.node, p.backups[0]) << p.fragment;
  }
  // Every replica consumes space: loads sum to rf * total bytes.
  auto loads = PlacementLoads(fragments, *placements, 3);
  uint64_t placed = 0;
  for (uint64_t l : loads) placed += l;
  EXPECT_EQ(placed, 2 * total);
}

TEST(AllocationTest, FewerNodesThanFragmentsStillAnswersQueries) {
  gen::ItemsGenOptions options;
  options.doc_count = 60;
  options.seed = 22;
  auto items = gen::GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  auto schema =
      workload::SectionHorizontalSchema("items", options.sections, 8);
  ASSERT_TRUE(schema.ok());
  auto fragments = frag::ApplyFragmentation(*items, *schema);
  ASSERT_TRUE(fragments.ok());
  auto placements =
      ComputePlacements(*fragments, 3, PlacementStrategy::kSizeBalanced);
  ASSERT_TRUE(placements.ok());

  DistributionCatalog catalog;
  ClusterSim cluster(3, xdb::DatabaseOptions(), NetworkModel());
  DataPublisher publisher(&cluster, &catalog);
  ASSERT_TRUE(
      publisher.PublishFragmented(*items, *schema, *placements).ok());
  QueryService service(&cluster, &catalog);
  auto result = service.Execute("count(collection(\"items\")/Item)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->serialized, std::to_string(items->size()));
  EXPECT_EQ(result->subqueries.size(), 8u);  // 8 fragments over 3 nodes
}

}  // namespace
}  // namespace partix::middleware
