// Focused decomposition/localization tests: predicate contradiction over
// ranges, strings, contains, and existence; rewriting details; plan notes
// and composition selection.

#include "partix/decomposer.h"

#include "gtest/gtest.h"
#include "partix/catalog.h"
#include "partix/query_service.h"
#include "xpath/predicate.h"

namespace partix::middleware {
namespace {

xpath::Conjunction Mu(const std::string& text) {
  auto result = xpath::Conjunction::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

/// Builds a catalog with one horizontally fragmented collection "c" whose
/// fragments carry the given predicates (placed on nodes 0..n-1).
DistributionCatalog MakeCatalog(
    const std::vector<std::pair<std::string, std::string>>& fragments) {
  DistributionCatalog catalog;
  frag::FragmentationSchema schema;
  schema.collection = "c";
  std::vector<FragmentPlacement> placements;
  size_t node = 0;
  for (const auto& [name, mu] : fragments) {
    schema.fragments.emplace_back(frag::HorizontalDef{name, Mu(mu)});
    placements.push_back(FragmentPlacement{name, node++});
  }
  EXPECT_TRUE(catalog.Register(std::move(schema), std::move(placements))
                  .ok());
  return catalog;
}

std::vector<std::string> Fragments(const DistributedPlan& plan) {
  std::vector<std::string> out;
  for (const SubQuery& sub : plan.subqueries) out.push_back(sub.fragment);
  return out;
}

TEST(DecomposerLocalizationTest, EqualityAgainstEqualityFragments) {
  DistributionCatalog catalog = MakeCatalog({
      {"f_cd", "/Item/Section = \"CD\""},
      {"f_dvd", "/Item/Section = \"DVD\""},
      {"f_rest", "/Item/Section != \"CD\" and /Item/Section != \"DVD\""},
  });
  QueryDecomposer decomposer(&catalog);
  auto plan = decomposer.Decompose(
      "for $i in collection(\"c\")/Item where $i/Section = \"DVD\" "
      "return $i/Name");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(Fragments(*plan), (std::vector<std::string>{"f_dvd"}));
  EXPECT_EQ(plan->pruned_fragments, 2u);
}

TEST(DecomposerLocalizationTest, EqualityAgainstStringRanges) {
  DistributionCatalog catalog = MakeCatalog({
      {"f_low", "/Item/Section < \"M\""},
      {"f_high", "/Item/Section >= \"M\""},
  });
  QueryDecomposer decomposer(&catalog);
  auto plan = decomposer.Decompose(
      "for $i in collection(\"c\")/Item where $i/Section = \"CD\" "
      "return $i");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(Fragments(*plan), (std::vector<std::string>{"f_low"}));
}

TEST(DecomposerLocalizationTest, NumericRangesAgainstRangeFragments) {
  DistributionCatalog catalog = MakeCatalog({
      {"f0", "/Item/Code < 100"},
      {"f1", "/Item/Code >= 100 and /Item/Code < 200"},
      {"f2", "/Item/Code >= 200"},
  });
  QueryDecomposer decomposer(&catalog);
  // Query range [120, 150): only f1 can match.
  auto plan = decomposer.Decompose(
      "for $i in collection(\"c\")/Item "
      "where $i/Code >= 120 and $i/Code < 150 return $i");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(Fragments(*plan), (std::vector<std::string>{"f1"}));

  // Point query on the boundary: 200 lands in f2 only.
  auto boundary = decomposer.Decompose(
      "for $i in collection(\"c\")/Item where $i/Code = 200 return $i");
  ASSERT_TRUE(boundary.ok());
  EXPECT_EQ(Fragments(*boundary), (std::vector<std::string>{"f2"}));

  // Open range crossing a boundary touches both sides.
  auto open = decomposer.Decompose(
      "for $i in collection(\"c\")/Item where $i/Code > 150 return $i");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(Fragments(*open), (std::vector<std::string>{"f1", "f2"}));
}

TEST(DecomposerLocalizationTest, ReversedComparisonOperandsLocalize) {
  DistributionCatalog catalog = MakeCatalog({
      {"f0", "/Item/Code < 100"},
      {"f1", "/Item/Code >= 100"},
  });
  QueryDecomposer decomposer(&catalog);
  // "150 <= $i/Code" is "$i/Code >= 150".
  auto plan = decomposer.Decompose(
      "for $i in collection(\"c\")/Item where 150 <= $i/Code return $i");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(Fragments(*plan), (std::vector<std::string>{"f1"}));
}

TEST(DecomposerLocalizationTest, ContainsAgainstNotContains) {
  DistributionCatalog catalog = MakeCatalog({
      {"f_good", "contains(//Description, \"good\")"},
      {"f_other", "not(contains(//Description, \"good\"))"},
  });
  QueryDecomposer decomposer(&catalog);
  auto plan = decomposer.Decompose(
      "for $i in collection(\"c\")/Item "
      "where contains($i//Description, \"good\") return $i/Code");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // The positive contains contradicts the negated fragment.
  EXPECT_EQ(Fragments(*plan), (std::vector<std::string>{"f_good"}));
}

TEST(DecomposerLocalizationTest, ExistenceAgainstEmptyFragments) {
  DistributionCatalog catalog = MakeCatalog({
      {"f_pics", "/Item/PictureList"},
      {"f_nopics", "empty(/Item/PictureList)"},
  });
  QueryDecomposer decomposer(&catalog);
  auto plan = decomposer.Decompose(
      "for $i in collection(\"c\")/Item "
      "where exists($i/PictureList) return $i/Code");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(Fragments(*plan), (std::vector<std::string>{"f_pics"}));
  // A deeper path under the empty() subtree also contradicts it.
  auto deep = decomposer.Decompose(
      "for $i in collection(\"c\")/Item "
      "where $i/PictureList/Picture/Name = \"front\" return $i");
  ASSERT_TRUE(deep.ok());
  EXPECT_EQ(Fragments(*deep), (std::vector<std::string>{"f_pics"}));
}

TEST(DecomposerLocalizationTest, DisjunctionsAreNeverUsedToPrune) {
  DistributionCatalog catalog = MakeCatalog({
      {"f_cd", "/Item/Section = \"CD\""},
      {"f_rest", "/Item/Section != \"CD\""},
  });
  QueryDecomposer decomposer(&catalog);
  auto plan = decomposer.Decompose(
      "for $i in collection(\"c\")/Item "
      "where $i/Section = \"CD\" or $i/Code = 1 return $i");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->subqueries.size(), 2u);  // conservative
}

TEST(DecomposerLocalizationTest, DifferentPathsDoNotInteract) {
  DistributionCatalog catalog = MakeCatalog({
      {"f_cd", "/Item/Section = \"CD\""},
      {"f_rest", "/Item/Section != \"CD\""},
  });
  QueryDecomposer decomposer(&catalog);
  // A Name predicate says nothing about Section fragments.
  auto plan = decomposer.Decompose(
      "for $i in collection(\"c\")/Item where $i/Name = \"CD\" return $i");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->subqueries.size(), 2u);
}

TEST(DecomposerRewriteTest, SubQueriesRenameTheCollection) {
  DistributionCatalog catalog = MakeCatalog({
      {"f_a", "/Item/Code < 10"},
      {"f_b", "/Item/Code >= 10"},
  });
  QueryDecomposer decomposer(&catalog);
  auto plan = decomposer.Decompose(
      "for $i in collection(\"c\")/Item return $i/Name");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->subqueries.size(), 2u);
  EXPECT_NE(plan->subqueries[0].query.find("collection(\"f_a\")"),
            std::string::npos);
  EXPECT_NE(plan->subqueries[1].query.find("collection(\"f_b\")"),
            std::string::npos);
  EXPECT_EQ(plan->subqueries[0].query.find("collection(\"c\")"),
            std::string::npos);
}

TEST(DecomposerRewriteTest, SumDecomposes) {
  DistributionCatalog catalog = MakeCatalog({
      {"f_a", "/Item/Code < 10"},
      {"f_b", "/Item/Code >= 10"},
  });
  QueryDecomposer decomposer(&catalog);
  auto plan =
      decomposer.Decompose("sum(collection(\"c\")/Item/Code)");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->composition, Composition::kSumCounts);
}

TEST(DecomposerRewriteTest, AvgFallsBackToFetch) {
  DistributionCatalog catalog = MakeCatalog({
      {"f_a", "/Item/Code < 10"},
      {"f_b", "/Item/Code >= 10"},
  });
  QueryDecomposer decomposer(&catalog);
  auto plan =
      decomposer.Decompose("avg(collection(\"c\")/Item/Code)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->composition, Composition::kJoinReconstruct);
}

TEST(ExplainTest, RendersPlanWithoutExecuting) {
  DistributionCatalog catalog = MakeCatalog({
      {"f_cd", "/Item/Section = \"CD\""},
      {"f_rest", "/Item/Section != \"CD\""},
  });
  ClusterSim cluster(2, xdb::DatabaseOptions(), NetworkModel());
  QueryService service(&cluster, &catalog);
  auto text = service.Explain(
      "for $i in collection(\"c\")/Item "
      "where $i/Section = \"CD\" return $i/Name");
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("f_cd"), std::string::npos);
  EXPECT_NE(text->find("pruned"), std::string::npos);
  EXPECT_NE(text->find("union"), std::string::npos);
  EXPECT_EQ(text->find("f_rest\n"), std::string::npos);
}

TEST(ExplainTest, RendersReplicaSetsAndPlanReplicas) {
  // Replicated placements: fragment i primary on node i, backup on the
  // next node.
  DistributionCatalog catalog;
  frag::FragmentationSchema schema;
  schema.collection = "c";
  std::vector<FragmentPlacement> placements;
  const std::vector<std::pair<std::string, std::string>> defs = {
      {"f_cd", "/Item/Section = \"CD\""},
      {"f_rest", "/Item/Section != \"CD\""},
  };
  for (size_t i = 0; i < defs.size(); ++i) {
    schema.fragments.emplace_back(
        frag::HorizontalDef{defs[i].first, Mu(defs[i].second)});
    FragmentPlacement p{defs[i].first, i};
    p.backups.push_back((i + 1) % defs.size());
    placements.push_back(std::move(p));
  }
  ASSERT_TRUE(catalog.Register(std::move(schema), std::move(placements))
                  .ok());
  QueryDecomposer decomposer(&catalog);
  auto plan = decomposer.Decompose("count(collection(\"c\")/Item)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->subqueries.size(), 2u);
  EXPECT_EQ(plan->subqueries[0].replicas, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(plan->subqueries[1].replicas, (std::vector<size_t>{1, 0}));

  ClusterSim cluster(2, xdb::DatabaseOptions(), NetworkModel());
  QueryService service(&cluster, &catalog);
  auto text = service.Explain("count(collection(\"c\")/Item)");
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("[replicas: node0,node1]"), std::string::npos)
      << *text;
  EXPECT_NE(text->find("[replicas: node1,node0]"), std::string::npos)
      << *text;
  // All nodes healthy: no failover annotations.
  EXPECT_EQ(text->find("failover"), std::string::npos) << *text;
}

TEST(DecomposerErrorsTest, UnknownCollection) {
  DistributionCatalog catalog;
  QueryDecomposer decomposer(&catalog);
  EXPECT_FALSE(decomposer.Decompose("count(collection(\"x\"))").ok());
}

TEST(DecomposerErrorsTest, NoCollectionReference) {
  DistributionCatalog catalog;
  QueryDecomposer decomposer(&catalog);
  EXPECT_FALSE(decomposer.Decompose("1 + 1").ok());
}

TEST(DecomposerErrorsTest, MalformedQuery) {
  DistributionCatalog catalog;
  QueryDecomposer decomposer(&catalog);
  EXPECT_EQ(decomposer.Decompose("for $i in").status().code(),
            StatusCode::kParseError);
}

}  // namespace
}  // namespace partix::middleware
