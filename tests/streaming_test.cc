// Streaming batched result pipeline (docs/streaming-runtime.md):
//
//   - identity: every workload query over three fragmentation designs
//     answers byte-identically with streaming on vs the materialized
//     ablation, across parallelism levels and block sizes
//   - stable join reconstruction: fragments sharing a reconstruction id
//     merge in arrival order (std::stable_sort pin — equal keys must not
//     permute the merged children)
//   - failover mid-stream: a node that dies after forwarding blocks is
//     replaced by a replica; the committed prefix is replay-verified and
//     the answer stays byte-identical
//   - commit barrier: under kReturnPartial a lane that fails mid-stream
//     contributes nothing — its already-forwarded blocks are dropped
//   - deadline mid-stream: an expiring deadline leaks zero governor
//     bytes and conserves the block counters
//   - accounting: union composition's peak governed bytes stay near the
//     answer size (the double-charge regression test)

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gen/virtual_store.h"
#include "gen/xbench.h"
#include "gtest/gtest.h"
#include "memory/governor.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "telemetry/metrics.h"
#include "workload/queries.h"
#include "workload/schemas.h"

namespace partix::middleware {
namespace {

/// Fast retry policy for tests: real backoff shape, negligible sleeps.
RetryPolicy FastRetry(size_t max_attempts) {
  RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.base_backoff_ms = 0.01;
  retry.max_backoff_ms = 0.1;
  retry.seed = 42;
  return retry;
}

/// Block-flow counter snapshot (partix_stream_blocks_*): the streaming
/// tests assert the conservation invariant produced == consumed +
/// discarded across fault-injected runs.
struct BlockCounters {
  uint64_t total = 0;
  uint64_t consumed = 0;
  uint64_t discarded = 0;

  static BlockCounters Read() {
    auto& registry = telemetry::MetricsRegistry::Global();
    BlockCounters out;
    out.total =
        registry.GetCounter("partix_stream_blocks_total")->Value();
    out.consumed =
        registry.GetCounter("partix_stream_blocks_consumed_total")->Value();
    out.discarded =
        registry.GetCounter("partix_stream_blocks_discarded_total")->Value();
    return out;
  }
};

/// Items collection fragmented by Section over a 4-node cluster with a
/// configurable replication factor (replica r of fragment i at node
/// (i + r) mod 4) — the failover_test fixture, reused for the streaming
/// fault-injection tests.
class StreamingClusterTest : public ::testing::Test {
 protected:
  explicit StreamingClusterTest(size_t replication_factor)
      : cluster_(4, xdb::DatabaseOptions(), NetworkModel()),
        publisher_(&cluster_, &catalog_),
        service_(&cluster_, &catalog_) {
    gen::ItemsGenOptions options;
    options.doc_count = 40;
    options.seed = 11;
    options.sections = {"CD", "DVD", "BOOK", "TOY"};
    auto items = gen::GenerateItems(options, nullptr);
    EXPECT_TRUE(items.ok());
    frag::FragmentationSchema schema;
    schema.collection = "items";
    for (const std::string& s : options.sections) {
      auto mu = xpath::Conjunction::Parse("/Item/Section = \"" + s + "\"");
      EXPECT_TRUE(mu.ok());
      schema.fragments.emplace_back(frag::HorizontalDef{"f_" + s, *mu});
    }
    EXPECT_TRUE(publisher_
                    .PublishFragmented(*items, schema, {},
                                       replication_factor)
                    .ok());
    // f_CD -> node 0, f_DVD -> node 1, f_BOOK -> node 2, f_TOY -> node 3
    // (+ backups on the next node(s) when replicated).
  }

  DistributionCatalog catalog_;
  ClusterSim cluster_;
  DataPublisher publisher_;
  QueryService service_;
};

class ReplicatedStreamingTest : public StreamingClusterTest {
 protected:
  ReplicatedStreamingTest() : StreamingClusterTest(2) {}
};

class UnreplicatedStreamingTest : public StreamingClusterTest {
 protected:
  UnreplicatedStreamingTest() : StreamingClusterTest(1) {}
};

/// Prunes to the single f_DVD sub-query (node 1) — the lane the fault
/// profiles below target.
const char* const kDvdNamesQuery =
    "for $i in collection(\"items\")/Item where $i/Section = \"DVD\" "
    "return $i/Name";
/// Touches every fragment: a 4-lane union.
const char* const kAllNamesQuery =
    "for $i in collection(\"items\")/Item return $i/Name";

// --- identity across fragmentation designs -------------------------------

enum class StreamDesign { kHorizontal, kVertical, kHybrid };

class StreamingIdentityP : public ::testing::TestWithParam<StreamDesign> {};

TEST_P(StreamingIdentityP, StreamingAnswersByteIdenticallyToMaterialized) {
  xml::Collection data;
  frag::FragmentationSchema schema;
  std::vector<workload::QuerySpec> queries;
  std::vector<std::string> sections = {"CD", "DVD", "BOOK", "TOY"};

  switch (GetParam()) {
    case StreamDesign::kHorizontal: {
      gen::ItemsGenOptions options;
      options.doc_count = 36;
      options.seed = 91;
      options.sections = sections;
      auto items = gen::GenerateItems(options, nullptr);
      ASSERT_TRUE(items.ok());
      data = std::move(*items);
      auto s = workload::SectionHorizontalSchema("items", sections, 3);
      ASSERT_TRUE(s.ok());
      schema = std::move(*s);
      queries = workload::HorizontalQueries("items");
      break;
    }
    case StreamDesign::kVertical: {
      gen::XBenchGenOptions options;
      options.doc_count = 8;
      options.target_doc_bytes = 3000;
      options.seed = 92;
      auto articles = gen::GenerateArticles(options, nullptr);
      ASSERT_TRUE(articles.ok());
      data = std::move(*articles);
      auto s = workload::ArticleVerticalSchema("papers");
      ASSERT_TRUE(s.ok());
      schema = std::move(*s);
      queries = workload::VerticalQueries("papers");
      break;
    }
    case StreamDesign::kHybrid: {
      gen::StoreGenOptions options;
      options.item_count = 36;
      options.seed = 93;
      options.sections = sections;
      options.large_items = false;
      auto store = gen::GenerateStore(options, nullptr);
      ASSERT_TRUE(store.ok());
      data = std::move(*store);
      auto s = workload::StoreHybridSchema(
          "store", sections, 3, frag::HybridMode::kOneDocPerSubtree);
      ASSERT_TRUE(s.ok());
      schema = std::move(*s);
      queries = workload::HybridQueries("store");
      break;
    }
  }

  DistributionCatalog catalog;
  ClusterSim cluster(schema.fragments.size(), xdb::DatabaseOptions(),
                     NetworkModel());
  DataPublisher publisher(&cluster, &catalog);
  ASSERT_TRUE(publisher.PublishFragmented(data, schema).ok());
  QueryService service(&cluster, &catalog);

  for (const workload::QuerySpec& q : queries) {
    ExecutionOptions materialized;
    materialized.streaming = false;
    auto base = service.Execute(q.text, materialized);
    ASSERT_TRUE(base.ok()) << q.id << ": " << base.status();
    EXPECT_EQ(base->stream_blocks, 0u) << q.id;

    for (size_t parallelism : {size_t{1}, size_t{0}}) {
      for (size_t block_items : {size_t{3}, size_t{256}}) {
        ExecutionOptions streaming;
        streaming.parallelism = parallelism;
        streaming.stream_block_items = block_items;
        auto result = service.Execute(q.text, streaming);
        ASSERT_TRUE(result.ok()) << q.id << ": " << result.status();
        EXPECT_EQ(result->serialized, base->serialized)
            << q.id << " at parallelism=" << parallelism
            << " block_items=" << block_items;
        EXPECT_EQ(result->result_items, base->result_items) << q.id;
        if (base->result_items > 0) {
          EXPECT_GT(result->stream_blocks, 0u) << q.id;
        }
        EXPECT_GE(result->ttfb_ms, 0.0) << q.id;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Designs, StreamingIdentityP,
    ::testing::Values(StreamDesign::kHorizontal, StreamDesign::kVertical,
                      StreamDesign::kHybrid),
    [](const ::testing::TestParamInfo<StreamDesign>& info) {
      switch (info.param) {
        case StreamDesign::kHorizontal:
          return "Horizontal";
        case StreamDesign::kVertical:
          return "Vertical";
        case StreamDesign::kHybrid:
          return "Hybrid";
      }
      return "Unknown";
    });

// --- stable join reconstruction ------------------------------------------

TEST(StreamingJoinTest, EqualReconstructionIdsMergeInArrivalOrder) {
  // Two fragments of one source document share reconstruction id 2
  // (FragMode2 siblings): JoinGroup merges the second into the container
  // the first created. The sort key (root id) is EQUAL for both, so only
  // a stable sort pins the merged children to plan order — this is the
  // std::stable_sort regression test. Run repeatedly: the pre-fix
  // std::sort was free to permute equal keys per run.
  DistributionCatalog catalog;
  ClusterSim cluster(2, xdb::DatabaseOptions(), NetworkModel());
  ASSERT_TRUE(cluster.node(0).CreateCollection("f_left", {}).ok());
  ASSERT_TRUE(cluster.node(1).CreateCollection("f_right", {}).ok());
  std::map<std::string, std::string> left_meta = {
      {"px-src", "d"}, {"px-root", "2"}, {"px-anc", "1:wrap"}};
  std::map<std::string, std::string> right_meta = left_meta;
  ASSERT_TRUE(cluster.node(0)
                  .StoreSerializedDocument("f_left", "d_left",
                                           "<s><x>L</x></s>", left_meta)
                  .ok());
  ASSERT_TRUE(cluster.node(1)
                  .StoreSerializedDocument("f_right", "d_right",
                                           "<s><x>R</x></s>", right_meta)
                  .ok());
  QueryService service(&cluster, &catalog);

  DistributedPlan plan;
  plan.collection = "joined";
  plan.original_query = "collection(\"joined\")/wrap";
  plan.composition = Composition::kJoinReconstruct;
  plan.subqueries.push_back({"f_left", 0, "collection(\"f_left\")", {}});
  plan.subqueries.push_back({"f_right", 1, "collection(\"f_right\")", {}});

  for (bool streaming : {true, false}) {
    for (int run = 0; run < 4; ++run) {
      ExecutionOptions options;
      options.streaming = streaming;
      auto result = service.ExecutePlan(plan, options);
      ASSERT_TRUE(result.ok())
          << "streaming=" << streaming << ": " << result.status();
      EXPECT_EQ(result->serialized, "<wrap><s><x>L</x><x>R</x></s></wrap>")
          << "streaming=" << streaming << " run=" << run;
    }
  }
}

// --- failover mid-stream --------------------------------------------------

TEST_F(ReplicatedStreamingTest, FailoverMidStreamKeepsAnswerByteIdentical) {
  // Node 1 (f_DVD primary) dies after serving ONE result block; the
  // executor fails over to the replica on node 2, which re-produces the
  // stream from the start. The channel replay-verifies the committed
  // prefix and drops it, so the forwarded block is never duplicated and
  // the answer matches the materialized baseline byte-for-byte.
  FaultProfile profile;
  profile.fail_stream_after_blocks = 1;
  cluster_.SetFaultProfile(1, profile);

  ExecutionOptions materialized;
  materialized.streaming = false;  // unaffected by the stream-only fault
  materialized.retry = FastRetry(3);
  auto base = service_.Execute(kDvdNamesQuery, materialized);
  ASSERT_TRUE(base.ok()) << base.status();
  ASSERT_GT(base->result_items, 1u);  // multi-block at block size 1

  auto& registry = telemetry::MetricsRegistry::Global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  const BlockCounters before = BlockCounters::Read();

  ExecutionOptions streaming;
  streaming.retry = FastRetry(3);
  streaming.stream_block_items = 1;  // one item per block
  auto result = service_.Execute(kDvdNamesQuery, streaming);

  const BlockCounters after = BlockCounters::Read();
  registry.set_enabled(was_enabled);

  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->serialized, base->serialized);
  EXPECT_EQ(result->result_items, base->result_items);
  EXPECT_TRUE(result->complete);
  EXPECT_GE(result->failovers, 1u);
  EXPECT_GT(result->stream_blocks, 1u);
  // The failed-over sub-query records where it actually ran.
  for (const SubQueryStats& stats : result->subqueries) {
    if (stats.fragment == "f_DVD") EXPECT_EQ(stats.node, 2u);
  }
  // Conservation: every block pushed was either composed or discarded
  // (replay-dropped duplicates are counted in neither side).
  EXPECT_EQ(after.total - before.total, (after.consumed - before.consumed) +
                                           (after.discarded -
                                            before.discarded));
}

// --- commit barrier under kReturnPartial ---------------------------------

TEST_F(UnreplicatedStreamingTest, ReturnPartialDiscardsFailedLanePrefix) {
  // The f_DVD lane forwards one block and then dies on every attempt
  // (unreplicated: no failover target). Under kReturnPartial the query
  // still succeeds, but the commit barrier must drop the lane's
  // forwarded prefix — the degraded answer has to equal the one computed
  // with the node fully down, not contain a torn f_DVD fragment.
  ExecutionOptions degraded;
  degraded.streaming = false;
  degraded.retry = FastRetry(2);
  degraded.partial_results = PartialResultPolicy::kReturnPartial;
  cluster_.SetNodeDown(1, true);
  auto base = service_.Execute(kAllNamesQuery, degraded);
  ASSERT_TRUE(base.ok()) << base.status();
  ASSERT_FALSE(base->complete);
  cluster_.SetNodeDown(1, false);

  FaultProfile profile;
  profile.fail_stream_after_blocks = 1;
  cluster_.SetFaultProfile(1, profile);

  auto& registry = telemetry::MetricsRegistry::Global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  const BlockCounters before = BlockCounters::Read();

  ExecutionOptions streaming;
  streaming.retry = FastRetry(2);
  streaming.stream_block_items = 1;
  streaming.partial_results = PartialResultPolicy::kReturnPartial;
  auto result = service_.Execute(kAllNamesQuery, streaming);

  const BlockCounters after = BlockCounters::Read();
  registry.set_enabled(was_enabled);

  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->complete);
  ASSERT_EQ(result->missing_fragments.size(), 1u);
  EXPECT_EQ(result->missing_fragments[0], "f_DVD");
  EXPECT_EQ(result->serialized, base->serialized);
  EXPECT_EQ(result->result_items, base->result_items);
  EXPECT_EQ(after.total - before.total, (after.consumed - before.consumed) +
                                           (after.discarded -
                                            before.discarded));
}

// --- deadline expires mid-stream -----------------------------------------

TEST_F(UnreplicatedStreamingTest, DeadlineMidStreamLeaksNoGovernorBytes) {
  // Node 1 stalls 30 ms before producing each block while the sub-query
  // deadline is 10 ms: the f_DVD attempt dies mid-stream, retries cannot
  // fit in the remaining budget, and the whole query fails under kFail.
  // The invariant under test is cleanup: zero bytes left charged to the
  // governor, and block counters that conserve (the healthy lanes'
  // forwarded blocks are all discarded).
  memory::MemoryGovernor governor(size_t{64} << 20);
  service_.set_memory_governor(&governor);

  FaultProfile profile;
  profile.stream_block_stall_ms = 30.0;
  cluster_.SetFaultProfile(1, profile);

  auto& registry = telemetry::MetricsRegistry::Global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  const BlockCounters before = BlockCounters::Read();

  ExecutionOptions options;
  options.retry = FastRetry(2);
  options.retry.subquery_deadline_ms = 10.0;
  options.stream_block_items = 1;
  auto result = service_.Execute(kAllNamesQuery, options);

  const BlockCounters after = BlockCounters::Read();
  registry.set_enabled(was_enabled);

  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("f_DVD"), std::string::npos)
      << result.status();
  EXPECT_EQ(governor.charged_bytes(), 0u);
  EXPECT_EQ(after.total - before.total, (after.consumed - before.consumed) +
                                           (after.discarded -
                                            before.discarded));
  service_.set_memory_governor(nullptr);
}

// --- union accounting: the double-charge regression ----------------------

TEST_F(UnreplicatedStreamingTest, UnionPeakGovernedBytesStayNearAnswerSize) {
  // Materialized union used to charge the partials AND the composed
  // answer without releasing the partials in between: peak ~ 2x the
  // answer. Post-fix each partial is released as it is appended, so the
  // peak stays within ~1.5x of the answer; the streaming path is bounded
  // the same way (incremental answer + a bounded block buffer). Both
  // paths must end with zero bytes charged.
  memory::MemoryGovernor governor(size_t{64} << 20);
  service_.set_memory_governor(&governor);

  ExecutionOptions materialized;
  materialized.streaming = false;
  governor.ResetPeakCharged();
  auto base = service_.Execute(kAllNamesQuery, materialized);
  ASSERT_TRUE(base.ok()) << base.status();
  const size_t answer_bytes = base->result_bytes;
  ASSERT_GT(answer_bytes, 0u);
  const size_t peak_materialized = governor.peak_charged_bytes();
  EXPECT_EQ(governor.charged_bytes(), 0u);
  EXPECT_GE(peak_materialized, answer_bytes);
  EXPECT_LE(peak_materialized, answer_bytes + answer_bytes / 2);

  governor.ResetPeakCharged();
  ExecutionOptions streaming;
  auto result = service_.Execute(kAllNamesQuery, streaming);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->serialized, base->serialized);
  const size_t peak_streaming = governor.peak_charged_bytes();
  EXPECT_EQ(governor.charged_bytes(), 0u);
  EXPECT_LE(peak_streaming, answer_bytes + answer_bytes / 2);

  service_.set_memory_governor(nullptr);
}

}  // namespace
}  // namespace partix::middleware
