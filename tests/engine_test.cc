#include <memory>

#include "engine/database.h"
#include "engine/planner.h"
#include "gtest/gtest.h"
#include "xquery/parser.h"

namespace partix::xdb {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  static xdb::DatabaseOptions FullyIndexed() {
    DatabaseOptions options;
    options.enable_value_index = true;
    options.text_index_accelerates_contains = true;
    return options;
  }

  DatabaseTest() : db_(FullyIndexed()) {
    EXPECT_TRUE(db_.CreateCollection("items").ok());
    Store("<Item><Code>1</Code><Name>cd one</Name>"
          "<Description>a good disc</Description><Section>CD</Section>"
          "</Item>");
    Store("<Item><Code>2</Code><Name>dvd one</Name>"
          "<Description>a fine movie</Description><Section>DVD</Section>"
          "</Item>");
    Store("<Item><Code>3</Code><Name>cd two</Name>"
          "<Description>another good disc</Description>"
          "<Section>CD</Section></Item>");
  }

  void Store(const std::string& xml) {
    static int n = 0;
    ASSERT_TRUE(
        db_.StoreSerialized("items", "doc" + std::to_string(n++), xml)
            .ok());
  }

  std::string Run(const std::string& query) {
    auto result = db_.Execute(query);
    EXPECT_TRUE(result.ok()) << query << " -> " << result.status();
    if (!result.ok()) return "<error>";
    last_metrics_ = result->metrics;
    return result->serialized;
  }

  Database db_;
  QueryMetrics last_metrics_;
};

TEST_F(DatabaseTest, DdlBasics) {
  EXPECT_TRUE(db_.HasCollection("items"));
  EXPECT_FALSE(db_.HasCollection("nope"));
  EXPECT_EQ(db_.CreateCollection("items").code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(db_.CreateCollection("tmp").ok());
  EXPECT_TRUE(db_.DropCollection("tmp").ok());
  EXPECT_EQ(db_.DropCollection("tmp").code(), StatusCode::kNotFound);
  EXPECT_EQ(db_.CollectionNames().size(), 1u);
  EXPECT_EQ(*db_.DocumentCount("items"), 3u);
  EXPECT_GT(*db_.SerializedBytes("items"), 0u);
}

TEST_F(DatabaseTest, ExecutesQueries) {
  EXPECT_EQ(Run("count(collection(\"items\")/Item)"), "3");
  EXPECT_EQ(Run("for $i in collection(\"items\")/Item "
                "where $i/Section = \"CD\" return $i/Code"),
            "<Code>1</Code>\n<Code>3</Code>");
}

TEST_F(DatabaseTest, MetricsArePopulated) {
  Run("count(collection(\"items\")/Item)");
  EXPECT_EQ(last_metrics_.docs_in_collections, 3u);
  EXPECT_EQ(last_metrics_.docs_considered, 3u);
  EXPECT_EQ(last_metrics_.result_items, 1u);
  EXPECT_GT(last_metrics_.elapsed_ms, 0.0);
}

TEST_F(DatabaseTest, ValueIndexPrunesEqualityQuery) {
  Run("count(collection(\"items\")/Item[Section = \"DVD\"])");
  // Only the one DVD document should be considered (value index).
  EXPECT_EQ(last_metrics_.docs_considered, 1u);
}

TEST_F(DatabaseTest, TextIndexPrunesContainsQuery) {
  Run("count(for $i in collection(\"items\")/Item "
      "where contains($i/Description, \"movie\") return $i)");
  EXPECT_EQ(last_metrics_.docs_considered, 1u);
}

TEST_F(DatabaseTest, ElementIndexPrunesStructuralQuery) {
  Run("count(collection(\"items\")/Item/Bogus)");
  EXPECT_EQ(last_metrics_.docs_considered, 0u);
}

TEST_F(DatabaseTest, UnprunableQueriesConsiderAllDocs) {
  Run("count(collection(\"items\"))");
  EXPECT_EQ(last_metrics_.docs_considered, 3u);
}

TEST_F(DatabaseTest, NegatedPredicatesAreNotPruned) {
  // not(contains(...)) must not use the positive text-index constraint.
  EXPECT_EQ(Run("count(for $i in collection(\"items\")/Item "
                "where not(contains($i/Description, \"good\")) "
                "return $i)"),
            "1");
  EXPECT_EQ(last_metrics_.docs_considered, 3u);
}

TEST_F(DatabaseTest, CacheControl) {
  Run("count(collection(\"items\")/Item)");
  EXPECT_EQ(last_metrics_.docs_parsed, 3u);
  Run("count(collection(\"items\")/Item)");
  EXPECT_EQ(last_metrics_.docs_parsed, 0u);  // cached
  EXPECT_EQ(last_metrics_.cache_hits, 3u);
  db_.DropCaches();
  Run("count(collection(\"items\")/Item)");
  EXPECT_EQ(last_metrics_.docs_parsed, 3u);
}

TEST_F(DatabaseTest, QueryAgainstMissingCollection) {
  auto result = db_.Execute("count(collection(\"nope\"))");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(DatabaseTest, MalformedQueryReportsParseError) {
  auto result = db_.Execute("for $i in");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(DatabaseOptionsTest, IndexesCanBeDisabled) {
  DatabaseOptions options;
  options.enable_element_index = false;
  options.enable_text_index = false;
  options.enable_value_index = false;
  Database db(options);
  ASSERT_TRUE(db.CreateCollection("c").ok());
  ASSERT_TRUE(db.StoreSerialized("c", "d",
                                 "<Item><Section>CD</Section></Item>")
                  .ok());
  auto result = db.Execute("count(collection(\"c\")/Item[Section = \"X\"])");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->serialized, "0");
  // Without indexes every document must be considered.
  EXPECT_EQ(result->metrics.docs_considered, 1u);
}

TEST(DatabaseSchemaTest, ValidateOnStore) {
  Database db;
  CollectionMeta meta;
  meta.schema = xml::VirtualStoreSchema();
  meta.root_path = "/Store/Items/Item";
  meta.validate_on_store = true;
  ASSERT_TRUE(db.CreateCollection("items", meta).ok());
  EXPECT_FALSE(db.StoreSerialized("items", "bad", "<Item><X/></Item>").ok());
  EXPECT_TRUE(db.StoreSerialized(
                    "items", "good",
                    "<Item><Code>1</Code><Name>n</Name>"
                    "<Description>d</Description><Section>CD</Section>"
                    "<Release>r</Release></Item>")
                  .ok());
}

// ---- Planner unit tests ----

std::map<std::string, CollectionPlan> Plan(const std::string& query) {
  auto ast = xquery::ParseQuery(query);
  EXPECT_TRUE(ast.ok()) << ast.status();
  return AnalyzeQuery(**ast);
}

TEST(PlannerTest, ExtractsSpineElements) {
  auto plans = Plan("collection(\"c\")/Item/Name");
  ASSERT_EQ(plans.count("c"), 1u);
  ASSERT_EQ(plans["c"].sites.size(), 1u);
  EXPECT_EQ(plans["c"].sites[0].required_elements,
            (std::vector<std::string>{"Item", "Name"}));
}

TEST(PlannerTest, ExtractsStepPredicateConstraints) {
  auto plans = Plan("collection(\"c\")/Item[Section = \"CD\"]");
  const SiteConstraints& site = plans["c"].sites[0];
  ASSERT_EQ(site.value_equals.size(), 1u);
  EXPECT_EQ(site.value_equals[0].first, "Section");
  EXPECT_EQ(site.value_equals[0].second, "CD");
}

TEST(PlannerTest, ExtractsWhereClauseConstraints) {
  auto plans = Plan(
      "for $i in collection(\"c\")/Item "
      "where contains($i/Description, \"good\") and $i/Code = 5 "
      "return $i");
  const SiteConstraints& site = plans["c"].sites[0];
  EXPECT_EQ(site.contains_needles, (std::vector<std::string>{"good"}));
  ASSERT_EQ(site.value_equals.size(), 1u);
  EXPECT_EQ(site.value_equals[0].first, "Code");
}

TEST(PlannerTest, BareCollectionIsUnconstrained) {
  auto plans = Plan("count(collection(\"c\"))");
  ASSERT_EQ(plans["c"].sites.size(), 1u);
  EXPECT_TRUE(plans["c"].sites[0].unconstrained);
}

TEST(PlannerTest, OrPredicatesYieldNoConstraints) {
  auto plans = Plan(
      "for $i in collection(\"c\")/Item "
      "where $i/A = \"x\" or $i/B = \"y\" return $i");
  const SiteConstraints& site = plans["c"].sites[0];
  EXPECT_TRUE(site.value_equals.empty());
  EXPECT_EQ(site.required_elements,
            (std::vector<std::string>{"Item"}));
}

TEST(PlannerTest, MultipleSitesUnion) {
  auto plans = Plan(
      "count(collection(\"c\")/Item[Section = \"CD\"]) + "
      "count(collection(\"c\")/Item[Section = \"DVD\"])");
  EXPECT_EQ(plans["c"].sites.size(), 2u);
}

}  // namespace
}  // namespace partix::xdb
