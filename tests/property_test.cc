// Property-based suites: parameterized sweeps over seeds, fragment
// designs, and whole query workloads, checking invariants rather than
// example outputs:
//
//   - parse(serialize(d)) == d for random documents
//   - path-evaluation algebraic properties on random documents
//   - every complementary horizontal design is correct
//   - every projection partition of the article schema is correct and
//     reconstructs exactly
//   - distributed execution (any design, any workload query) returns the
//     centralized answer

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "fragmentation/correctness.h"
#include "fragmentation/fragmenter.h"
#include "fragmentation/reconstruct.h"
#include "gen/virtual_store.h"
#include "gen/xbench.h"
#include "gtest/gtest.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "workload/queries.h"
#include "workload/schemas.h"
#include "xml/compare.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/eval.h"

namespace partix {
namespace {

// ---------------------------------------------------------------------
// Random document machinery
// ---------------------------------------------------------------------

/// Builds a random (but seeded, reproducible) document with nested
/// elements, attributes, and text leaves.
xml::DocumentPtr RandomDocument(uint64_t seed,
                                std::shared_ptr<xml::NamePool> pool) {
  Rng rng(seed);
  auto doc = std::make_shared<xml::Document>(pool, "rand-" +
                                                       std::to_string(seed));
  static const char* kNames[] = {"alpha", "beta", "gamma", "delta",
                                 "epsilon", "zeta"};
  xml::NodeId root = doc->CreateRoot("root");
  std::vector<std::pair<xml::NodeId, int>> frontier = {{root, 0}};
  while (!frontier.empty()) {
    auto [node, depth] = frontier.back();
    frontier.pop_back();
    if (rng.Bernoulli(0.4)) {
      doc->AppendAttribute(node, "id",
                           std::to_string(rng.UniformInt(0, 999)));
    }
    int children = static_cast<int>(rng.UniformInt(0, depth > 3 ? 1 : 4));
    if (children == 0) {
      // Leaf: text (possibly with characters needing escapes).
      std::string text = rng.Sentence(int(rng.UniformInt(1, 6)));
      if (rng.Bernoulli(0.3)) text += " <&\"'> " + rng.Word(2, 5);
      doc->AppendText(node, text);
      continue;
    }
    for (int i = 0; i < children; ++i) {
      xml::NodeId child =
          doc->AppendElement(node, kNames[rng.NextBelow(6)]);
      frontier.emplace_back(child, depth + 1);
    }
  }
  return doc;
}

class RoundTripP : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripP, ParseSerializeRoundTrip) {
  auto pool = std::make_shared<xml::NamePool>();
  xml::DocumentPtr doc = RandomDocument(GetParam(), pool);
  std::string compact = xml::Serialize(*doc);
  auto reparsed = xml::ParseXml(pool, "rt", compact);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_TRUE(xml::DocumentsEqual(*doc, **reparsed))
      << xml::ExplainDifference(*doc, doc->root(), **reparsed,
                                (*reparsed)->root());
  // Serialization is deterministic: serialize(parse(serialize(d))) ==
  // serialize(d).
  EXPECT_EQ(xml::Serialize(**reparsed), compact);
}

TEST_P(RoundTripP, IndentedFormStillRoundTrips) {
  auto pool = std::make_shared<xml::NamePool>();
  xml::DocumentPtr doc = RandomDocument(GetParam(), pool);
  xml::SerializeOptions options;
  options.indent = true;
  options.declaration = true;
  auto reparsed = xml::ParseXml(pool, "rt", xml::Serialize(*doc, options));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  // Indentation only introduces ignorable whitespace, which the data
  // model drops; the trees must match (text leaves keep their spacing
  // because indentation never touches simple content).
  EXPECT_TRUE(xml::DocumentsEqual(*doc, **reparsed))
      << xml::ExplainDifference(*doc, doc->root(), **reparsed,
                                (*reparsed)->root());
}

TEST_P(RoundTripP, PathEvaluationProperties) {
  auto pool = std::make_shared<xml::NamePool>();
  xml::DocumentPtr doc = RandomDocument(GetParam(), pool);
  static const char* kNames[] = {"alpha", "beta", "gamma"};
  for (const char* name : kNames) {
    auto child = xpath::Path::Parse(std::string("/root/") + name);
    auto anywhere = xpath::Path::Parse(std::string("//") + name);
    ASSERT_TRUE(child.ok() && anywhere.ok());
    std::vector<xml::NodeId> direct = xpath::EvalPath(*doc, *child);
    std::vector<xml::NodeId> descendants =
        xpath::EvalPath(*doc, *anywhere);
    // /root/x is a subset of //x.
    for (xml::NodeId n : direct) {
      EXPECT_TRUE(std::find(descendants.begin(), descendants.end(), n) !=
                  descendants.end());
    }
    // Every match carries the right label, results are sorted and unique.
    for (xml::NodeId n : descendants) {
      EXPECT_EQ(doc->name(n), name);
    }
    EXPECT_TRUE(
        std::is_sorted(descendants.begin(), descendants.end()));
    EXPECT_TRUE(std::adjacent_find(descendants.begin(),
                                   descendants.end()) ==
                descendants.end());
    // Rooted-at-root equals absolute evaluation.
    EXPECT_EQ(xpath::EvalPathRootedAt(*doc, doc->root(), *anywhere),
              descendants);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripP,
                         ::testing::Range(uint64_t{0}, uint64_t{24}));

// ---------------------------------------------------------------------
// Complementary horizontal designs
// ---------------------------------------------------------------------

class ComplementaryHorizontalP
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(ComplementaryHorizontalP, AlwaysCorrect) {
  const auto& [pred_text, seed] = GetParam();
  gen::ItemsGenOptions options;
  options.doc_count = 40;
  options.seed = seed;
  options.large_docs = (seed % 2) == 0;
  auto items = gen::GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());

  auto pred = xpath::Predicate::Parse(pred_text);
  ASSERT_TRUE(pred.ok()) << pred.status();
  frag::FragmentationSchema schema;
  schema.collection = "items";
  schema.fragments.emplace_back(frag::HorizontalDef{
      "f_pos", xpath::Conjunction({*pred})});
  schema.fragments.emplace_back(frag::HorizontalDef{
      "f_neg", xpath::Conjunction({pred->Complement()})});

  auto report = frag::CheckCorrectness(*items, schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << pred_text << " seed=" << seed << ": "
                            << report->Summary();
}

INSTANTIATE_TEST_SUITE_P(
    PredicatesAndSeeds, ComplementaryHorizontalP,
    ::testing::Combine(
        ::testing::Values("/Item/Section = \"CD\"",
                          "/Item/Code < 20",
                          "contains(/Item/Description, \"good\")",
                          "/Item/PictureList",
                          "/Item/Release >= \"2002\""),
        ::testing::Values(uint64_t{1}, uint64_t{2}, uint64_t{3})));

TEST_P(ComplementaryHorizontalP, ComplementIsExactNegationOnSingleOccurrencePaths) {
  // The localization logic assumes fragmentation predicates address
  // single-occurrence paths, under which Complement() is an exact logical
  // negation per document. Verify the law on generated data.
  const auto& [pred_text, seed] = GetParam();
  gen::ItemsGenOptions options;
  options.doc_count = 30;
  options.seed = seed + 100;
  auto items = gen::GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  auto pred = xpath::Predicate::Parse(pred_text);
  ASSERT_TRUE(pred.ok());
  xpath::Predicate complement = pred->Complement();
  for (const auto& doc : items->docs()) {
    EXPECT_NE(pred->Eval(*doc), complement.Eval(*doc))
        << pred_text << " on " << doc->doc_name();
  }
}

// ---------------------------------------------------------------------
// Projection partitions of the article schema
// ---------------------------------------------------------------------

/// Bitmask over {prolog, body, epilog}: the masked parts become their own
/// fragments, the base fragment keeps the rest.
class ArticlePartitionP : public ::testing::TestWithParam<int> {};

TEST_P(ArticlePartitionP, CorrectAndReconstructsExactly) {
  const int mask = GetParam();
  gen::XBenchGenOptions options;
  options.doc_count = 5;
  options.target_doc_bytes = 3000;
  options.seed = 77;
  auto articles = gen::GenerateArticles(options, nullptr);
  ASSERT_TRUE(articles.ok());

  static const char* kParts[] = {"prolog", "body", "epilog"};
  frag::FragmentationSchema schema;
  schema.collection = "papers";
  std::vector<xpath::Path> prune;
  for (int i = 0; i < 3; ++i) {
    if ((mask & (1 << i)) == 0) continue;
    auto path = xpath::Path::Parse(std::string("/article/") + kParts[i]);
    ASSERT_TRUE(path.ok());
    prune.push_back(*path);
    schema.fragments.emplace_back(
        frag::VerticalDef{std::string("f_") + kParts[i], *path, {}});
  }
  auto base = xpath::Path::Parse("/article");
  ASSERT_TRUE(base.ok());
  schema.fragments.emplace_back(frag::VerticalDef{"f_base", *base, prune});

  auto report = frag::CheckCorrectness(*articles, schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << "mask=" << mask << ": "
                            << report->Summary();

  // And the reconstruction is byte-exact.
  auto fragments = frag::ApplyFragmentation(*articles, schema);
  ASSERT_TRUE(fragments.ok());
  auto rebuilt = frag::ReconstructVertical(
      *fragments, "papers", articles->docs()[0]->pool());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  ASSERT_EQ(rebuilt->size(), articles->size());
  for (const auto& original : articles->docs()) {
    bool matched = false;
    for (const auto& doc : rebuilt->docs()) {
      if (doc->doc_name() == original->doc_name()) {
        EXPECT_EQ(xml::Serialize(*original), xml::Serialize(*doc));
        matched = true;
      }
    }
    EXPECT_TRUE(matched);
  }
}

INSTANTIATE_TEST_SUITE_P(Masks, ArticlePartitionP,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// Distributed == centralized, across whole workloads and designs
// ---------------------------------------------------------------------

std::string SortLines(const std::string& text) {
  auto views = Split(text, '\n');
  std::vector<std::string> lines(views.begin(), views.end());
  std::sort(lines.begin(), lines.end());
  return Join(lines, "\n");
}

enum class DesignKind { kHorizontal, kVertical, kHybrid1, kHybrid2 };

struct EquivalenceCase {
  DesignKind design;
  std::string label;
};

class WorkloadEquivalenceP
    : public ::testing::TestWithParam<DesignKind> {};

TEST_P(WorkloadEquivalenceP, EveryQueryMatchesCentralized) {
  const DesignKind design = GetParam();

  xml::Collection data;
  frag::FragmentationSchema schema;
  std::vector<workload::QuerySpec> queries;
  std::vector<std::string> sections = {"CD", "DVD", "BOOK", "TOY"};

  switch (design) {
    case DesignKind::kHorizontal: {
      gen::ItemsGenOptions options;
      options.doc_count = 50;
      options.seed = 31;
      options.sections = sections;
      auto items = gen::GenerateItems(options, nullptr);
      ASSERT_TRUE(items.ok());
      data = std::move(*items);
      auto s = workload::SectionHorizontalSchema("items", sections, 3);
      ASSERT_TRUE(s.ok());
      schema = std::move(*s);
      queries = workload::HorizontalQueries("items");
      break;
    }
    case DesignKind::kVertical: {
      gen::XBenchGenOptions options;
      options.doc_count = 10;
      options.target_doc_bytes = 3000;
      options.seed = 32;
      auto articles = gen::GenerateArticles(options, nullptr);
      ASSERT_TRUE(articles.ok());
      data = std::move(*articles);
      auto s = workload::ArticleVerticalSchema("papers");
      ASSERT_TRUE(s.ok());
      schema = std::move(*s);
      queries = workload::VerticalQueries("papers");
      break;
    }
    case DesignKind::kHybrid1:
    case DesignKind::kHybrid2: {
      gen::StoreGenOptions options;
      options.item_count = 50;
      options.seed = 33;
      options.sections = sections;
      options.large_items = false;
      auto store = gen::GenerateStore(options, nullptr);
      ASSERT_TRUE(store.ok());
      data = std::move(*store);
      auto s = workload::StoreHybridSchema(
          "store", sections, 3,
          design == DesignKind::kHybrid1
              ? frag::HybridMode::kOneDocPerSubtree
              : frag::HybridMode::kSinglePrunedDoc);
      ASSERT_TRUE(s.ok());
      schema = std::move(*s);
      queries = workload::HybridQueries("store");
      break;
    }
  }

  // Centralized copy on its own node.
  middleware::DistributionCatalog catalog;
  middleware::ClusterSim cluster(schema.fragments.size() + 1,
                                 xdb::DatabaseOptions(),
                                 middleware::NetworkModel());
  middleware::DataPublisher publisher(&cluster, &catalog);

  xml::Collection central(data.name() + "_central", data.schema(),
                          data.root_path(), data.kind());
  for (const auto& doc : data.docs()) ASSERT_TRUE(central.Add(doc).ok());
  ASSERT_TRUE(
      publisher.PublishCentralized(central, schema.fragments.size())
          .ok());
  ASSERT_TRUE(publisher.PublishFragmented(data, schema).ok());

  middleware::QueryService service(&cluster, &catalog);
  for (const workload::QuerySpec& q : queries) {
    auto distributed = service.Execute(q.text);
    ASSERT_TRUE(distributed.ok()) << q.id << ": " << distributed.status();
    std::string central_query = q.text;
    const std::string needle = "\"" + data.name() + "\"";
    const std::string replacement = "\"" + central.name() + "\"";
    size_t pos;
    while ((pos = central_query.find(needle)) != std::string::npos) {
      central_query.replace(pos, needle.size(), replacement);
    }
    auto reference =
        cluster.node(schema.fragments.size()).Execute(central_query);
    ASSERT_TRUE(reference.ok()) << q.id << ": " << reference.status();
    EXPECT_EQ(SortLines(distributed->serialized),
              SortLines(reference->serialized))
        << q.id << " (" << q.description << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Designs, WorkloadEquivalenceP,
    ::testing::Values(DesignKind::kHorizontal, DesignKind::kVertical,
                      DesignKind::kHybrid1, DesignKind::kHybrid2),
    [](const ::testing::TestParamInfo<DesignKind>& info) {
      switch (info.param) {
        case DesignKind::kHorizontal:
          return "Horizontal";
        case DesignKind::kVertical:
          return "Vertical";
        case DesignKind::kHybrid1:
          return "HybridFragMode1";
        case DesignKind::kHybrid2:
          return "HybridFragMode2";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace partix
