#include <memory>

#include "gtest/gtest.h"
#include "xml/parser.h"
#include "xpath/eval.h"
#include "xpath/path.h"
#include "xpath/predicate.h"

namespace partix::xpath {
namespace {

using xml::DocumentPtr;

DocumentPtr Doc(const std::string& xml) {
  auto pool = std::make_shared<xml::NamePool>();
  auto result = xml::ParseXml(pool, "test", xml);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

Path P(const std::string& text) {
  auto result = Path::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

TEST(PathParseTest, SimpleSteps) {
  Path p = P("/Store/Items/Item");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.steps()[0].name, "Store");
  EXPECT_EQ(p.steps()[2].name, "Item");
  EXPECT_EQ(p.ToString(), "/Store/Items/Item");
}

TEST(PathParseTest, DescendantWildcardAttributePosition) {
  Path p = P("//Item/*/Picture[1]/@id");
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.steps()[0].axis, Axis::kDescendant);
  EXPECT_TRUE(p.steps()[1].wildcard);
  EXPECT_EQ(p.steps()[2].position, 1);
  EXPECT_TRUE(p.steps()[3].is_attribute);
  EXPECT_EQ(p.ToString(), "//Item/*/Picture[1]/@id");
}

TEST(PathParseTest, Rejections) {
  EXPECT_FALSE(Path::Parse("Item/Name").ok());     // must be absolute
  EXPECT_FALSE(Path::Parse("/").ok());             // dangling slash
  EXPECT_FALSE(Path::Parse("/a/[1]").ok());        // missing name
  EXPECT_FALSE(Path::Parse("/a[0]").ok());         // position must be >= 1
  EXPECT_FALSE(Path::Parse("/a[x]").ok());         // non-numeric position
  EXPECT_FALSE(Path::Parse("/@id/b").ok());        // attr must be last
  EXPECT_FALSE(Path::Parse("").ok());
}

TEST(PathTest, PrefixRelation) {
  EXPECT_TRUE(P("/a/b").IsPrefixOf(P("/a/b/c")));
  EXPECT_TRUE(P("/a/b").IsPrefixOf(P("/a/b")));
  EXPECT_FALSE(P("/a/c").IsPrefixOf(P("/a/b/c")));
  EXPECT_FALSE(P("/a/b/c").IsPrefixOf(P("/a/b")));
  // Axis matters for syntactic prefixes.
  EXPECT_FALSE(P("//a").IsPrefixOf(P("/a/b")));
}

TEST(PathTest, Suffix) {
  Path s = P("/a/b/c").Suffix(1);
  EXPECT_EQ(s.ToString(), "/b/c");
  EXPECT_TRUE(P("/a").Suffix(5).empty());
}

constexpr char kItemXml[] =
    "<Item id=\"9\"><Code>42</Code><Name>radio</Name>"
    "<Description>a good cheap radio</Description>"
    "<Section>HIFI</Section>"
    "<PictureList>"
    "<Picture><Name>front</Name><Description>front view</Description>"
    "</Picture>"
    "<Picture><Name>back</Name><Description>back view</Description>"
    "</Picture>"
    "</PictureList></Item>";

TEST(EvalTest, RootMatching) {
  DocumentPtr doc = Doc(kItemXml);
  EXPECT_EQ(EvalPath(*doc, P("/Item")).size(), 1u);
  EXPECT_TRUE(EvalPath(*doc, P("/Other")).empty());
}

TEST(EvalTest, ChildSteps) {
  DocumentPtr doc = Doc(kItemXml);
  auto nodes = EvalPath(*doc, P("/Item/Code"));
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(doc->StringValue(nodes[0]), "42");
}

TEST(EvalTest, DescendantStep) {
  DocumentPtr doc = Doc(kItemXml);
  // Three Descriptions: the item's and both pictures'.
  EXPECT_EQ(EvalPath(*doc, P("//Description")).size(), 3u);
  EXPECT_EQ(EvalPath(*doc, P("/Item//Description")).size(), 3u);
  EXPECT_EQ(EvalPath(*doc, P("/Item/Description")).size(), 1u);
  // Descendant axis can match the root itself.
  EXPECT_EQ(EvalPath(*doc, P("//Item")).size(), 1u);
}

TEST(EvalTest, Wildcard) {
  DocumentPtr doc = Doc(kItemXml);
  EXPECT_EQ(EvalPath(*doc, P("/Item/*")).size(), 5u);
  EXPECT_EQ(EvalPath(*doc, P("/*/Code")).size(), 1u);
}

TEST(EvalTest, PositionalFilter) {
  DocumentPtr doc = Doc(kItemXml);
  auto first = EvalPath(*doc, P("/Item/PictureList/Picture[1]/Name"));
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(doc->StringValue(first[0]), "front");
  auto second = EvalPath(*doc, P("/Item/PictureList/Picture[2]/Name"));
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(doc->StringValue(second[0]), "back");
  EXPECT_TRUE(EvalPath(*doc, P("/Item/PictureList/Picture[3]")).empty());
}

TEST(EvalTest, AttributeStep) {
  DocumentPtr doc = Doc(kItemXml);
  auto attrs = EvalPath(*doc, P("/Item/@id"));
  ASSERT_EQ(attrs.size(), 1u);
  EXPECT_EQ(doc->StringValue(attrs[0]), "9");
  EXPECT_EQ(EvalPath(*doc, P("/Item/@*")).size(), 1u);
  EXPECT_TRUE(EvalPath(*doc, P("/Item/@missing")).empty());
}

TEST(EvalTest, RelativeEvaluation) {
  DocumentPtr doc = Doc(kItemXml);
  auto pictures = EvalPath(*doc, P("/Item/PictureList/Picture"));
  ASSERT_EQ(pictures.size(), 2u);
  auto names = EvalPathFrom(*doc, pictures[0], P("/Name"));
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(doc->StringValue(names[0]), "front");
}

TEST(EvalTest, RootedAtSubtree) {
  DocumentPtr doc = Doc(kItemXml);
  auto pictures = EvalPath(*doc, P("/Item/PictureList/Picture"));
  ASSERT_EQ(pictures.size(), 2u);
  // Instance-absolute path /Picture/Name against the subtree.
  auto names = EvalPathRootedAt(*doc, pictures[1], P("/Picture/Name"));
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(doc->StringValue(names[0]), "back");
  // Non-matching root name selects nothing.
  EXPECT_TRUE(EvalPathRootedAt(*doc, pictures[1], P("/Item/Name")).empty());
}

TEST(EvalTest, DocumentOrderAndDedup) {
  DocumentPtr doc = Doc("<r><a><b>1</b></a><a><b>2</b></a></r>");
  auto nodes = EvalPath(*doc, P("//a//b"));
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_LT(nodes[0], nodes[1]);
}

Predicate Pred(const std::string& text) {
  auto result = Predicate::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

TEST(PredicateTest, ParseForms) {
  EXPECT_EQ(Pred("/Item/Section = \"CD\"").kind(),
            Predicate::Kind::kCompare);
  EXPECT_EQ(Pred("contains(//Description, \"good\")").kind(),
            Predicate::Kind::kContains);
  EXPECT_EQ(Pred("/Item/PictureList").kind(), Predicate::Kind::kExists);
  Predicate empty = Pred("empty(/Item/PictureList)");
  EXPECT_EQ(empty.kind(), Predicate::Kind::kExists);
  EXPECT_TRUE(empty.negated());
  Predicate nc = Pred("not(contains(//Description, \"good\"))");
  EXPECT_EQ(nc.kind(), Predicate::Kind::kContains);
  EXPECT_TRUE(nc.negated());
  EXPECT_FALSE(Predicate::Parse("").ok());
  EXPECT_FALSE(Predicate::Parse("contains(/a)").ok());
  EXPECT_FALSE(Predicate::Parse("/a = oops").ok());
}

TEST(PredicateTest, CompareSemantics) {
  DocumentPtr doc = Doc(kItemXml);
  EXPECT_TRUE(Pred("/Item/Section = \"HIFI\"").Eval(*doc));
  EXPECT_FALSE(Pred("/Item/Section = \"CD\"").Eval(*doc));
  EXPECT_TRUE(Pred("/Item/Section != \"CD\"").Eval(*doc));
  EXPECT_TRUE(Pred("/Item/Code >= 42").Eval(*doc));
  EXPECT_FALSE(Pred("/Item/Code > 42").Eval(*doc));
  EXPECT_TRUE(Pred("/Item/Code < 100").Eval(*doc));
  // Numeric comparison, not lexicographic: "42" < "100".
  EXPECT_TRUE(Pred("/Item/Code > 9").Eval(*doc));
}

TEST(PredicateTest, ContainsAndExistential) {
  DocumentPtr doc = Doc(kItemXml);
  EXPECT_TRUE(Pred("contains(/Item/Description, \"good\")").Eval(*doc));
  EXPECT_FALSE(Pred("contains(/Item/Description, \"bad\")").Eval(*doc));
  // Existential over multiple nodes: any Picture Description matching.
  EXPECT_TRUE(Pred("contains(//Description, \"back view\")").Eval(*doc));
  EXPECT_TRUE(Pred("/Item/PictureList").Eval(*doc));
  EXPECT_FALSE(Pred("empty(/Item/PictureList)").Eval(*doc));
  EXPECT_TRUE(Pred("empty(/Item/PricesHistory)").Eval(*doc));
}

TEST(PredicateTest, MissingPathBehaviour) {
  DocumentPtr doc = Doc(kItemXml);
  // Comparisons over empty node sets are false, and so are their
  // complements' base forms — but empty() is true.
  EXPECT_FALSE(Pred("/Item/Nope = \"x\"").Eval(*doc));
  EXPECT_FALSE(Pred("/Item/Nope != \"x\"").Eval(*doc));
  EXPECT_TRUE(Pred("empty(/Item/Nope)").Eval(*doc));
}

TEST(PredicateTest, Complement) {
  Predicate eq = Pred("/a = \"x\"");
  Predicate ne = eq.Complement();
  EXPECT_EQ(ne.op(), CompareOp::kNe);
  EXPECT_EQ(ne.Complement().op(), CompareOp::kEq);
  Predicate lt = Pred("/a < 5");
  EXPECT_EQ(lt.Complement().op(), CompareOp::kGe);
  Predicate exists = Pred("/a");
  EXPECT_TRUE(exists.Complement().negated());
}

TEST(ConjunctionTest, ParseAndEval) {
  DocumentPtr doc = Doc(kItemXml);
  auto conj = Conjunction::Parse(
      "/Item/Section = \"HIFI\" and contains(/Item/Description, \"good\")");
  ASSERT_TRUE(conj.ok()) << conj.status();
  EXPECT_TRUE(conj->Eval(*doc));
  auto conj2 = Conjunction::Parse(
      "/Item/Section = \"HIFI\" and /Item/Code > 100");
  ASSERT_TRUE(conj2.ok());
  EXPECT_FALSE(conj2->Eval(*doc));
  auto truth = Conjunction::Parse("true");
  ASSERT_TRUE(truth.ok());
  EXPECT_TRUE(truth->IsTrue());
  EXPECT_TRUE(truth->Eval(*doc));
}

TEST(ConjunctionTest, ToStringRoundTrips) {
  auto conj = Conjunction::Parse(
      "/Item/Section != \"CD\" and empty(/Item/PictureList)");
  ASSERT_TRUE(conj.ok());
  auto round = Conjunction::Parse(conj->ToString());
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(round->ToString(), conj->ToString());
}

}  // namespace
}  // namespace partix::xpath
