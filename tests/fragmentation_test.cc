#include <memory>

#include "fragmentation/algebra.h"

#include "xpath/eval.h"
#include "fragmentation/correctness.h"
#include "fragmentation/fragment_def.h"
#include "fragmentation/fragmenter.h"
#include "fragmentation/reconstruct.h"
#include "gtest/gtest.h"
#include "xml/compare.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace partix::frag {
namespace {

using xml::Collection;
using xml::DocumentPtr;
using xml::RepoKind;

xpath::Path P(const std::string& text) {
  auto result = xpath::Path::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

xpath::Conjunction Mu(const std::string& text) {
  auto result = xpath::Conjunction::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

/// Builds the Citems-style MD collection used across these tests.
class ItemsFixture : public ::testing::Test {
 protected:
  ItemsFixture()
      : pool_(std::make_shared<xml::NamePool>()),
        items_("items", xml::VirtualStoreSchema(), "/Store/Items/Item",
               RepoKind::kMultipleDocuments) {
    Add("<Item><Code>1</Code><Name>cd one</Name>"
        "<Description>a good disc</Description><Section>CD</Section>"
        "<Release>2004-01-01</Release>"
        "<PictureList><Picture><Name>p1</Name><Description>d1"
        "</Description><ModificationDate>m</ModificationDate>"
        "<OriginalPath>o</OriginalPath><ThumbPath>t</ThumbPath>"
        "</Picture></PictureList></Item>");
    Add("<Item><Code>2</Code><Name>dvd one</Name>"
        "<Description>a movie</Description><Section>DVD</Section>"
        "<Release>2004-02-02</Release></Item>");
    Add("<Item><Code>3</Code><Name>book one</Name>"
        "<Description>sturdy good book</Description>"
        "<Section>BOOK</Section><Release>2004-03-03</Release></Item>");
  }

  void Add(const std::string& xml) {
    auto doc =
        xml::ParseXml(pool_, "item" + std::to_string(next_doc_++), xml);
    ASSERT_TRUE(doc.ok()) << doc.status();
    ASSERT_TRUE(items_.Add(*doc).ok());
  }

  std::shared_ptr<xml::NamePool> pool_;
  Collection items_;
  int next_doc_ = 0;
};

// ---- Algebra: selection ----

TEST_F(ItemsFixture, SelectFiltersDocuments) {
  Collection cds = Select(items_, Mu("/Item/Section = \"CD\""), "cds");
  EXPECT_EQ(cds.size(), 1u);
  Collection good =
      Select(items_, Mu("contains(//Description, \"good\")"), "good");
  EXPECT_EQ(good.size(), 2u);
  Collection none = Select(items_, Mu("/Item/Section = \"VHS\""), "none");
  EXPECT_TRUE(none.empty());
}

TEST_F(ItemsFixture, SelectSharesDocuments) {
  Collection cds = Select(items_, Mu("/Item/Section = \"CD\""), "cds");
  ASSERT_EQ(cds.size(), 1u);
  EXPECT_EQ(cds.docs()[0].get(), items_.docs()[0].get());
}

// ---- Algebra: projection ----

TEST_F(ItemsFixture, ProjectSubtree) {
  auto result =
      ProjectDocument(*items_.docs()[0], P("/Item/PictureList"), {}, "f");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(*result, nullptr);
  const xml::Document& doc = **result;
  EXPECT_EQ(doc.name(doc.root()), "PictureList");
  EXPECT_TRUE(doc.origin_tracking());
  EXPECT_EQ(doc.origin_doc(), "item0");
  ASSERT_EQ(doc.origin_ancestors().size(), 1u);
  EXPECT_EQ(doc.origin_ancestors()[0].second, "Item");
}

TEST_F(ItemsFixture, ProjectWithPrune) {
  auto result = ProjectDocument(*items_.docs()[0], P("/Item"),
                                {P("/Item/PictureList")}, "f");
  ASSERT_TRUE(result.ok()) << result.status();
  const xml::Document& doc = **result;
  EXPECT_EQ(doc.name(doc.root()), "Item");
  // PictureList pruned away.
  EXPECT_TRUE(
      xpath::EvalPath(doc, P("/Item/PictureList")).empty());
  EXPECT_FALSE(xpath::EvalPath(doc, P("/Item/Code")).empty());
}

TEST_F(ItemsFixture, ProjectMissingPathYieldsNoInstance) {
  // Document item1 has no PictureList.
  auto result =
      ProjectDocument(*items_.docs()[1], P("/Item/PictureList"), {}, "f");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(*result, nullptr);
}

TEST_F(ItemsFixture, ProjectRejectsMultiNodeSelection) {
  // Picture has cardinality 1..n under PictureList; construct a doc with
  // two pictures to trigger the restriction.
  auto doc = xml::ParseXml(
      pool_, "multi",
      "<Item><PictureList><Picture><Name>a</Name></Picture>"
      "<Picture><Name>b</Name></Picture></PictureList></Item>");
  ASSERT_TRUE(doc.ok());
  auto result = ProjectDocument(**doc, P("/Item/PictureList/Picture"), {},
                                "f");
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  // A positional index resolves it (the paper's escape hatch).
  auto positional = ProjectDocument(
      **doc, P("/Item/PictureList/Picture[1]"), {}, "f");
  ASSERT_TRUE(positional.ok()) << positional.status();
  EXPECT_EQ((*positional)->StringValue((*positional)->root()), "a");
}

// ---- Algebra: union and join ----

TEST_F(ItemsFixture, UnionRebuildsHorizontal) {
  Collection cds = Select(items_, Mu("/Item/Section = \"CD\""), "f1");
  Collection rest = Select(items_, Mu("/Item/Section != \"CD\""), "f2");
  auto rebuilt = UnionCollections({cds, rest}, "items");
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_EQ(rebuilt->size(), items_.size());
}

TEST_F(ItemsFixture, UnionDetectsOverlap) {
  Collection all1 = Select(items_, Mu("true"), "f1");
  Collection all2 = Select(items_, Mu("true"), "f2");
  auto rebuilt = UnionCollections({all1, all2}, "items");
  EXPECT_EQ(rebuilt.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ItemsFixture, JoinRebuildsVerticalSplit) {
  const DocumentPtr& src = items_.docs()[0];
  auto body = ProjectDocument(*src, P("/Item"), {P("/Item/PictureList")},
                              "f1");
  auto pictures =
      ProjectDocument(*src, P("/Item/PictureList"), {}, "f2");
  ASSERT_TRUE(body.ok() && pictures.ok());
  ASSERT_NE(*body, nullptr);
  ASSERT_NE(*pictures, nullptr);
  auto joined = JoinFragments({*body, *pictures}, pool_);
  ASSERT_TRUE(joined.ok()) << joined.status();
  EXPECT_TRUE(xml::DocumentsEqual(*src, **joined))
      << xml::ExplainDifference(*src, src->root(), **joined,
                                (*joined)->root());
}

TEST_F(ItemsFixture, JoinDetectsOverlappingFragments) {
  const DocumentPtr& src = items_.docs()[0];
  auto whole1 = ProjectDocument(*src, P("/Item"), {}, "f1");
  auto whole2 = ProjectDocument(*src, P("/Item"), {}, "f2");
  ASSERT_TRUE(whole1.ok() && whole2.ok());
  auto joined = JoinFragments({*whole1, *whole2}, pool_);
  EXPECT_EQ(joined.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ItemsFixture, JoinRecreatesScaffoldAncestors) {
  // Split into three children fragments; no fragment holds the Item root,
  // which must be re-created from the scaffold chains.
  const DocumentPtr& src = items_.docs()[1];
  auto code = ProjectDocument(*src, P("/Item/Code"), {}, "f1");
  auto name = ProjectDocument(*src, P("/Item/Name"), {}, "f2");
  auto desc = ProjectDocument(*src, P("/Item/Description"), {}, "f3");
  auto section = ProjectDocument(*src, P("/Item/Section"), {}, "f4");
  auto release = ProjectDocument(*src, P("/Item/Release"), {}, "f5");
  ASSERT_TRUE(code.ok() && name.ok() && desc.ok() && section.ok() &&
              release.ok());
  auto joined =
      JoinFragments({*code, *name, *desc, *section, *release}, pool_);
  ASSERT_TRUE(joined.ok()) << joined.status();
  EXPECT_TRUE(xml::DocumentsEqual(*src, **joined))
      << xml::ExplainDifference(*src, src->root(), **joined,
                                (*joined)->root());
}

// ---- Fragment definitions ----

TEST(FragmentDefTest, KindsAndNames) {
  FragmentDef h(HorizontalDef{"fh", Mu("/Item/Section = \"CD\"")});
  FragmentDef v(VerticalDef{"fv", P("/article/prolog"), {}});
  FragmentDef y(HybridDef{"fy", P("/Store/Items"), {},
                          Mu("/Item/Section = \"CD\"")});
  EXPECT_EQ(h.kind(), FragmentKind::kHorizontal);
  EXPECT_EQ(v.kind(), FragmentKind::kVertical);
  EXPECT_EQ(y.kind(), FragmentKind::kHybrid);
  EXPECT_EQ(h.name(), "fh");
  EXPECT_FALSE(h.ToString("c").empty());
  EXPECT_FALSE(v.ToString("c").empty());
  EXPECT_FALSE(y.ToString("c").empty());
}

TEST(FragmentationSchemaTest, ValidateStructure) {
  FragmentationSchema schema;
  schema.collection = "c";
  EXPECT_FALSE(schema.ValidateStructure().ok());  // empty
  schema.fragments.emplace_back(
      HorizontalDef{"f1", Mu("/Item/Section = \"CD\"")});
  schema.fragments.emplace_back(
      HorizontalDef{"f1", Mu("/Item/Section != \"CD\"")});
  EXPECT_FALSE(schema.ValidateStructure().ok());  // duplicate name
  schema.fragments[1] = FragmentDef(
      HorizontalDef{"f2", Mu("/Item/Section != \"CD\"")});
  EXPECT_TRUE(schema.ValidateStructure().ok());
}

TEST(FragmentationSchemaTest, PrunePathsMustExtendFragmentPath) {
  FragmentationSchema schema;
  schema.collection = "c";
  schema.fragments.emplace_back(
      VerticalDef{"f", P("/a/b"), {P("/a/c")}});
  EXPECT_FALSE(schema.ValidateStructure().ok());
  schema.fragments[0] =
      FragmentDef(VerticalDef{"f", P("/a/b"), {P("/a/b/c")}});
  EXPECT_TRUE(schema.ValidateStructure().ok());
}

// ---- Fragmenter + correctness: horizontal ----

TEST_F(ItemsFixture, HorizontalFragmentationAndCorrectness) {
  FragmentationSchema schema;
  schema.collection = "items";
  schema.fragments.emplace_back(
      HorizontalDef{"f_cd", Mu("/Item/Section = \"CD\"")});
  schema.fragments.emplace_back(
      HorizontalDef{"f_rest", Mu("/Item/Section != \"CD\"")});

  auto fragments = ApplyFragmentation(items_, schema);
  ASSERT_TRUE(fragments.ok()) << fragments.status();
  ASSERT_EQ(fragments->size(), 2u);
  EXPECT_EQ((*fragments)[0].size(), 1u);
  EXPECT_EQ((*fragments)[1].size(), 2u);

  auto report = CheckCorrectness(items_, schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->complete);
  EXPECT_TRUE(report->disjoint);
  EXPECT_TRUE(report->reconstructible);
}

TEST_F(ItemsFixture, HorizontalIncompletenessDetected) {
  FragmentationSchema schema;
  schema.collection = "items";
  schema.fragments.emplace_back(
      HorizontalDef{"f_cd", Mu("/Item/Section = \"CD\"")});
  schema.fragments.emplace_back(
      HorizontalDef{"f_dvd", Mu("/Item/Section = \"DVD\"")});
  // BOOK items match no fragment.
  auto report = CheckCorrectness(items_, schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->complete);
  EXPECT_FALSE(report->ok());
}

TEST_F(ItemsFixture, HorizontalOverlapDetected) {
  FragmentationSchema schema;
  schema.collection = "items";
  schema.fragments.emplace_back(HorizontalDef{"f_all", Mu("true")});
  schema.fragments.emplace_back(
      HorizontalDef{"f_cd", Mu("/Item/Section = \"CD\"")});
  auto report = CheckCorrectness(items_, schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->disjoint);
}

TEST_F(ItemsFixture, ExistentialFragmentation) {
  // Paper Fig. 2(c): partition by presence of PictureList.
  FragmentationSchema schema;
  schema.collection = "items";
  schema.fragments.emplace_back(
      HorizontalDef{"f_pics", Mu("/Item/PictureList")});
  schema.fragments.emplace_back(
      HorizontalDef{"f_nopics", Mu("empty(/Item/PictureList)")});
  auto report = CheckCorrectness(items_, schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST(FragmenterTest, RejectsHeterogeneousCollections) {
  auto pool = std::make_shared<xml::NamePool>();
  Collection mixed("mixed", xml::VirtualStoreSchema(), "/Store/Items/Item",
                   RepoKind::kMultipleDocuments);
  auto item = xml::ParseXml(
      pool, "ok",
      "<Item><Code>1</Code><Name>n</Name><Description>d</Description>"
      "<Section>CD</Section><Release>r</Release></Item>");
  auto alien = xml::ParseXml(pool, "alien", "<Other><X/></Other>");
  ASSERT_TRUE(item.ok() && alien.ok());
  ASSERT_TRUE(mixed.Add(*item).ok());
  ASSERT_TRUE(mixed.Add(*alien).ok());
  FragmentationSchema schema;
  schema.collection = "mixed";
  schema.fragments.emplace_back(HorizontalDef{"f", Mu("true")});
  auto result = ApplyFragmentation(mixed, schema);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  // Schemaless collections are exempt (nothing to validate against).
  Collection schemaless("mixed2", nullptr, "", RepoKind::kMultipleDocuments);
  ASSERT_TRUE(schemaless.Add(*item).ok());
  ASSERT_TRUE(schemaless.Add(*alien).ok());
  FragmentationSchema schema2 = schema;
  schema2.collection = "mixed2";
  EXPECT_TRUE(ApplyFragmentation(schemaless, schema2).ok());
}

TEST(FragmenterTest, HorizontalRejectsSdCollections) {
  auto pool = std::make_shared<xml::NamePool>();
  Collection store("store", nullptr, "/Store", RepoKind::kSingleDocument);
  auto doc = xml::ParseXml(pool, "s", "<Store><Items/></Store>");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(store.Add(*doc).ok());
  FragmentationSchema schema;
  schema.collection = "store";
  schema.fragments.emplace_back(HorizontalDef{"f", Mu("true")});
  auto fragments = ApplyFragmentation(store, schema);
  EXPECT_EQ(fragments.status().code(), StatusCode::kFailedPrecondition);
}

// ---- Fragmenter + correctness: vertical ----

TEST_F(ItemsFixture, VerticalFragmentationAndCorrectness) {
  FragmentationSchema schema;
  schema.collection = "items";
  // Paper Fig. 3(a): F1 = Item minus PictureList, F2 = PictureList.
  schema.fragments.emplace_back(
      VerticalDef{"f_item", P("/Item"), {P("/Item/PictureList")}});
  schema.fragments.emplace_back(
      VerticalDef{"f_pics", P("/Item/PictureList"), {}});
  auto report = CheckCorrectness(items_, schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->Summary();
}

TEST_F(ItemsFixture, VerticalIncompletenessDetected) {
  FragmentationSchema schema;
  schema.collection = "items";
  // Only project Code: everything else is uncovered.
  schema.fragments.emplace_back(VerticalDef{"f", P("/Item/Code"), {}});
  auto report = CheckCorrectness(items_, schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->complete);
}

TEST_F(ItemsFixture, VerticalOverlapDetected) {
  FragmentationSchema schema;
  schema.collection = "items";
  schema.fragments.emplace_back(VerticalDef{"f_all", P("/Item"), {}});
  schema.fragments.emplace_back(VerticalDef{"f_code", P("/Item/Code"), {}});
  auto report = CheckCorrectness(items_, schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->disjoint);
}

TEST_F(ItemsFixture, VerticalReconstructionRoundTrip) {
  FragmentationSchema schema;
  schema.collection = "items";
  schema.fragments.emplace_back(
      VerticalDef{"f_item", P("/Item"), {P("/Item/PictureList")}});
  schema.fragments.emplace_back(
      VerticalDef{"f_pics", P("/Item/PictureList"), {}});
  auto fragments = ApplyFragmentation(items_, schema);
  ASSERT_TRUE(fragments.ok());
  auto rebuilt = ReconstructVertical(*fragments, "items", pool_);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  ASSERT_EQ(rebuilt->size(), items_.size());
  for (size_t i = 0; i < items_.size(); ++i) {
    // Reconstructed collection is ordered by source doc name.
    bool found = false;
    for (const DocumentPtr& doc : rebuilt->docs()) {
      if (doc->doc_name() == items_.docs()[i]->doc_name()) {
        EXPECT_TRUE(xml::DocumentsEqual(*items_.docs()[i], *doc));
        found = true;
      }
    }
    EXPECT_TRUE(found) << items_.docs()[i]->doc_name();
  }
}

// ---- Hybrid fragmentation over an SD store ----

class StoreFixture : public ::testing::Test {
 protected:
  StoreFixture()
      : pool_(std::make_shared<xml::NamePool>()),
        store_("store", xml::VirtualStoreSchema(), "/Store",
               RepoKind::kSingleDocument) {
    auto doc = xml::ParseXml(
        pool_, "store-doc",
        "<Store>"
        "<Sections><Section><Code>1</Code><Name>CD</Name></Section>"
        "<Section><Code>2</Code><Name>DVD</Name></Section></Sections>"
        "<Items>"
        "<Item><Code>1</Code><Name>cd one</Name><Description>good"
        "</Description><Section>CD</Section><Release>r</Release></Item>"
        "<Item><Code>2</Code><Name>dvd one</Name><Description>fine"
        "</Description><Section>DVD</Section><Release>r</Release></Item>"
        "<Item><Code>3</Code><Name>cd two</Name><Description>nice"
        "</Description><Section>CD</Section><Release>r</Release></Item>"
        "<Item><Code>4</Code><Name>toy one</Name><Description>fun"
        "</Description><Section>TOY</Section><Release>r</Release></Item>"
        "</Items>"
        "<Employees><Employee>ann</Employee><Employee>bob</Employee>"
        "</Employees>"
        "</Store>");
    EXPECT_TRUE(doc.ok()) << doc.status();
    EXPECT_TRUE(store_.Add(*doc).ok());
  }

  FragmentationSchema PaperHybridSchema(HybridMode mode) {
    // Paper Fig. 4 adapted: 3 instance fragments by Section + the pruned
    // store fragment.
    FragmentationSchema schema;
    schema.collection = "store";
    schema.hybrid_mode = mode;
    schema.fragments.emplace_back(HybridDef{
        "f_cd", P("/Store/Items"), {}, Mu("/Item/Section = \"CD\"")});
    schema.fragments.emplace_back(HybridDef{
        "f_dvd", P("/Store/Items"), {}, Mu("/Item/Section = \"DVD\"")});
    schema.fragments.emplace_back(
        HybridDef{"f_other", P("/Store/Items"), {},
                  Mu("/Item/Section != \"CD\" and "
                     "/Item/Section != \"DVD\"")});
    schema.fragments.emplace_back(
        HybridDef{"f_store", P("/Store"), {P("/Store/Items")}, Mu("true")});
    return schema;
  }

  std::shared_ptr<xml::NamePool> pool_;
  Collection store_;
};

TEST_F(StoreFixture, HybridFragMode2ProducesContainers) {
  auto fragments =
      ApplyFragmentation(store_, PaperHybridSchema(
                                     HybridMode::kSinglePrunedDoc));
  ASSERT_TRUE(fragments.ok()) << fragments.status();
  ASSERT_EQ(fragments->size(), 4u);
  // f_cd: one container doc with the two CD items.
  EXPECT_EQ((*fragments)[0].size(), 1u);
  const xml::Document& cd = *(*fragments)[0].docs()[0];
  EXPECT_EQ(cd.name(cd.root()), "Items");
  EXPECT_EQ(cd.ElementChildren(cd.root()).size(), 2u);
  // f_store: Store without Items.
  const xml::Document& st = *(*fragments)[3].docs()[0];
  EXPECT_EQ(st.name(st.root()), "Store");
  EXPECT_EQ(st.ElementChildren(st.root()).size(), 2u);  // Sections+Employees
}

TEST_F(StoreFixture, HybridFragMode1ProducesOneDocPerItem) {
  auto fragments = ApplyFragmentation(
      store_, PaperHybridSchema(HybridMode::kOneDocPerSubtree));
  ASSERT_TRUE(fragments.ok()) << fragments.status();
  EXPECT_EQ((*fragments)[0].size(), 2u);  // two CD items
  EXPECT_EQ((*fragments)[1].size(), 1u);
  EXPECT_EQ((*fragments)[2].size(), 1u);
  const xml::Document& item = *(*fragments)[0].docs()[0];
  EXPECT_EQ(item.name(item.root()), "Item");
}

TEST_F(StoreFixture, HybridCorrectnessBothModes) {
  for (HybridMode mode : {HybridMode::kSinglePrunedDoc,
                          HybridMode::kOneDocPerSubtree}) {
    auto report = CheckCorrectness(store_, PaperHybridSchema(mode));
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->ok()) << report->Summary();
  }
}

TEST_F(StoreFixture, HybridIncompletenessDetected) {
  FragmentationSchema schema;
  schema.collection = "store";
  // CD fragment only: DVD/TOY items and the rest of the store uncovered.
  schema.fragments.emplace_back(HybridDef{
      "f_cd", P("/Store/Items"), {}, Mu("/Item/Section = \"CD\"")});
  auto report = CheckCorrectness(store_, schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->complete);
}

TEST_F(StoreFixture, HybridOverlapDetected) {
  auto schema = PaperHybridSchema(HybridMode::kSinglePrunedDoc);
  // Make f_other overlap with f_cd.
  schema.fragments[2] = FragmentDef(HybridDef{
      "f_other", P("/Store/Items"), {},
      Mu("/Item/Section != \"DVD\"")});
  auto report = CheckCorrectness(store_, schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->disjoint);
}

}  // namespace
}  // namespace partix::frag
