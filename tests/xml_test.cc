#include <memory>

#include "gtest/gtest.h"
#include "xml/compare.h"
#include "xml/document.h"
#include "xml/parser.h"
#include "xml/schema.h"
#include "xml/serializer.h"

namespace partix::xml {
namespace {

std::shared_ptr<NamePool> Pool() { return std::make_shared<NamePool>(); }

TEST(NamePoolTest, InternsAndFinds) {
  NamePool pool;
  NameId a = pool.Intern("Item");
  NameId b = pool.Intern("Store");
  NameId a2 = pool.Intern("Item");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Get(a), "Item");
  EXPECT_EQ(pool.Find("Store"), b);
  EXPECT_FALSE(pool.Find("Nope").has_value());
  EXPECT_EQ(pool.size(), 2u);
}

TEST(NamePoolTest, StableViewsAcrossGrowth) {
  NamePool pool;
  std::vector<std::string_view> views;
  for (int i = 0; i < 1000; ++i) {
    views.push_back(pool.Get(pool.Intern("name" + std::to_string(i))));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(pool.Find("name" + std::to_string(i)).value(),
              static_cast<NameId>(i));
    EXPECT_EQ(views[i], "name" + std::to_string(i));
  }
}

TEST(DocumentTest, BuildAndNavigate) {
  Document doc(Pool(), "d1");
  NodeId root = doc.CreateRoot("Item");
  NodeId code = doc.AppendElement(root, "Code");
  doc.AppendText(code, "42");
  doc.AppendAttribute(root, "id", "abc");
  NodeId name = doc.AppendElement(root, "Name");
  doc.AppendText(name, "thing");

  EXPECT_EQ(doc.root(), root);
  EXPECT_EQ(doc.name(root), "Item");
  EXPECT_EQ(doc.parent(code), root);
  EXPECT_EQ(doc.ElementChildren(root).size(), 2u);
  EXPECT_EQ(doc.Attributes(root).size(), 1u);
  NodeId attr = doc.FindAttribute(root, *doc.pool()->Find("id"));
  ASSERT_NE(attr, kNullNode);
  EXPECT_EQ(doc.value(attr), "abc");
  EXPECT_EQ(doc.StringValue(root), "42thing");
  EXPECT_EQ(doc.StringValue(code), "42");
  EXPECT_TRUE(doc.HasSimpleContent(code));
  EXPECT_FALSE(doc.HasSimpleContent(root));
  EXPECT_EQ(doc.node_count(), 6u);
}

TEST(DocumentTest, ElementChildrenByName) {
  Document doc(Pool(), "d");
  NodeId root = doc.CreateRoot("r");
  doc.AppendElement(root, "a");
  doc.AppendElement(root, "b");
  doc.AppendElement(root, "a");
  NameId a = *doc.pool()->Find("a");
  EXPECT_EQ(doc.ElementChildren(root, a).size(), 2u);
}

TEST(DocumentTest, CopySubtreeWithSkip) {
  auto pool = Pool();
  Document src(pool, "src");
  NodeId root = src.CreateRoot("Item");
  NodeId keep = src.AppendElement(root, "Keep");
  src.AppendText(keep, "k");
  NodeId drop = src.AppendElement(root, "Drop");
  src.AppendText(drop, "d");

  Document dst(pool, "dst");
  dst.EnableOriginTracking("src");
  NodeId copied = dst.CopySubtree(src, root, kNullNode,
                                  [&](NodeId n) { return n == drop; });
  ASSERT_NE(copied, kNullNode);
  EXPECT_EQ(dst.ElementChildren(copied).size(), 1u);
  EXPECT_EQ(dst.StringValue(copied), "k");
  EXPECT_EQ(dst.origin(copied), root);
  EXPECT_EQ(dst.origin_doc(), "src");
}

TEST(DocumentTest, VisitSubtreeIsPreorder) {
  Document doc(Pool(), "d");
  NodeId root = doc.CreateRoot("r");
  NodeId a = doc.AppendElement(root, "a");
  doc.AppendText(a, "x");
  doc.AppendElement(root, "b");
  std::vector<NodeId> order;
  doc.VisitSubtree(root, [&](NodeId n) { order.push_back(n); });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], root);
  EXPECT_EQ(order[1], a);
}

TEST(ParserTest, ParsesBasicDocument) {
  auto result = ParseXml(Pool(), "t",
                         "<?xml version=\"1.0\"?>\n"
                         "<Item id=\"7\"><Code>42</Code>"
                         "<Name>a &amp; b</Name></Item>");
  ASSERT_TRUE(result.ok()) << result.status();
  const Document& doc = **result;
  EXPECT_EQ(doc.name(doc.root()), "Item");
  EXPECT_EQ(doc.StringValue(doc.root()), "42a & b");
  EXPECT_EQ(doc.Attributes(doc.root()).size(), 1u);
}

TEST(ParserTest, SelfClosingAndNesting) {
  auto result =
      ParseXml(Pool(), "t", "<a><b/><c><d>x</d></c></a>");
  ASSERT_TRUE(result.ok()) << result.status();
  const Document& doc = **result;
  EXPECT_EQ(doc.ElementChildren(doc.root()).size(), 2u);
}

TEST(ParserTest, EntitiesAndCharRefs) {
  auto result = ParseXml(Pool(), "t",
                         "<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</a>");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)->StringValue((*result)->root()), "<>&\"'AB");
}

TEST(ParserTest, CdataSection) {
  auto result = ParseXml(Pool(), "t", "<a><![CDATA[1 < 2 & 3]]></a>");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)->StringValue((*result)->root()), "1 < 2 & 3");
}

TEST(ParserTest, SkipsCommentsAndPIsAndDoctype) {
  auto result = ParseXml(Pool(), "t",
                         "<!DOCTYPE a [<!ELEMENT a ANY>]>"
                         "<!-- hi --><?pi data?><a><!-- in -->"
                         "<b>x</b></a><!-- after -->");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)->ElementChildren((*result)->root()).size(), 1u);
}

TEST(ParserTest, RejectsMismatchedTags) {
  auto result = ParseXml(Pool(), "t", "<a><b></a></b>");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, RejectsMixedContent) {
  auto result = ParseXml(Pool(), "t", "<a>text<b/></a>");
  EXPECT_FALSE(result.ok());
}

TEST(ParserTest, RejectsTruncatedInput) {
  EXPECT_FALSE(ParseXml(Pool(), "t", "<a><b>").ok());
  EXPECT_FALSE(ParseXml(Pool(), "t", "").ok());
  EXPECT_FALSE(ParseXml(Pool(), "t", "<a attr=>").ok());
}

TEST(ParserTest, ReportsLineNumbers) {
  auto result = ParseXml(Pool(), "t", "<a>\n\n<b x=></b></a>");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
}

TEST(SerializerTest, RoundTrip) {
  auto pool = Pool();
  auto parsed = ParseXml(pool, "t",
                         "<Store><Items><Item id=\"1\"><Code>5</Code>"
                         "</Item></Items></Store>");
  ASSERT_TRUE(parsed.ok());
  std::string serialized = Serialize(**parsed);
  auto reparsed = ParseXml(pool, "t2", serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_TRUE(DocumentsEqual(**parsed, **reparsed));
}

TEST(SerializerTest, EscapesSpecialCharacters) {
  auto pool = Pool();
  Document doc(pool, "d");
  NodeId root = doc.CreateRoot("a");
  doc.AppendAttribute(root, "q", "x\"y<z");
  doc.AppendText(root, "1<2&3");
  std::string s = Serialize(doc);
  EXPECT_EQ(s, "<a q=\"x&quot;y&lt;z\">1&lt;2&amp;3</a>");
  auto round = ParseXml(pool, "d2", s);
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(DocumentsEqual(doc, **round));
}

TEST(SerializerTest, IndentedOutput) {
  auto pool = Pool();
  Document doc(pool, "d");
  NodeId root = doc.CreateRoot("a");
  NodeId b = doc.AppendElement(root, "b");
  doc.AppendText(b, "x");
  SerializeOptions opts;
  opts.indent = true;
  std::string s = Serialize(doc, opts);
  EXPECT_NE(s.find("\n  <b>"), std::string::npos);
}

TEST(CompareTest, DetectsDifferences) {
  auto pool = Pool();
  auto a = ParseXml(pool, "a", "<r><x>1</x></r>");
  auto b = ParseXml(pool, "b", "<r><x>2</x></r>");
  auto c = ParseXml(pool, "c", "<r><x>1</x></r>");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_FALSE(DocumentsEqual(**a, **b));
  EXPECT_TRUE(DocumentsEqual(**a, **c));
  EXPECT_FALSE(
      ExplainDifference(**a, (*a)->root(), **b, (*b)->root())
          .empty());
}

TEST(SchemaTest, ValidatesVirtualStoreItem) {
  auto pool = Pool();
  auto doc = ParseXml(pool, "item",
                      "<Item><Code>1</Code><Name>n</Name>"
                      "<Description>d</Description><Section>CD</Section>"
                      "<Release>2004-01-01</Release></Item>");
  ASSERT_TRUE(doc.ok());
  SchemaPtr schema = xml::VirtualStoreSchema();
  EXPECT_TRUE(schema->Validate(**doc, "Item").ok());
}

TEST(SchemaTest, RejectsMissingMandatoryChild) {
  auto pool = Pool();
  auto doc = ParseXml(pool, "item", "<Item><Code>1</Code></Item>");
  ASSERT_TRUE(doc.ok());
  SchemaPtr schema = xml::VirtualStoreSchema();
  Status status = schema->Validate(**doc, "Item");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsUndeclaredChild) {
  auto pool = Pool();
  auto doc = ParseXml(pool, "item",
                      "<Item><Code>1</Code><Name>n</Name>"
                      "<Description>d</Description><Section>CD</Section>"
                      "<Release>r</Release><Bogus>x</Bogus></Item>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(
      xml::VirtualStoreSchema()->Validate(**doc, "Item").ok());
}

TEST(SchemaTest, RejectsWrongRoot) {
  auto pool = Pool();
  auto doc = ParseXml(pool, "d", "<Other/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(xml::VirtualStoreSchema()->Validate(**doc, "Item").ok());
}

TEST(SchemaTest, XBenchSchemaHasArticleTypes) {
  SchemaPtr schema = xml::XBenchArticleSchema();
  EXPECT_NE(schema->FindType("article"), nullptr);
  EXPECT_NE(schema->FindType("prolog"), nullptr);
  EXPECT_NE(schema->FindType("body"), nullptr);
  EXPECT_NE(schema->FindType("epilog"), nullptr);
  EXPECT_EQ(schema->FindType("nope"), nullptr);
}

}  // namespace
}  // namespace partix::xml
