// Fault-tolerant distributed execution: replica failover, bounded
// retries with deterministic backoff, circuit breakers, timeouts, and
// the PartialResultPolicy degraded-execution contract.

#include <atomic>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/strings.h"
#include "gen/virtual_store.h"
#include "gtest/gtest.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "telemetry/metrics.h"

namespace partix::middleware {
namespace {

/// Fast retry policy for tests: real backoff shape, negligible sleeps.
RetryPolicy FastRetry(size_t max_attempts) {
  RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.base_backoff_ms = 0.01;
  retry.max_backoff_ms = 0.1;
  retry.seed = 42;
  return retry;
}

/// Items collection fragmented by Section over a 4-node cluster with a
/// configurable replication factor (replica r of fragment i at node
/// (i + r) mod 4).
class FailoverTestBase : public ::testing::Test {
 protected:
  explicit FailoverTestBase(size_t replication_factor)
      : cluster_(4, xdb::DatabaseOptions(), NetworkModel()),
        publisher_(&cluster_, &catalog_),
        service_(&cluster_, &catalog_) {
    gen::ItemsGenOptions options;
    options.doc_count = 40;
    options.seed = 11;
    options.sections = {"CD", "DVD", "BOOK", "TOY"};
    auto items = gen::GenerateItems(options, nullptr);
    EXPECT_TRUE(items.ok());
    frag::FragmentationSchema schema;
    schema.collection = "items";
    for (const std::string& s : options.sections) {
      auto mu = xpath::Conjunction::Parse("/Item/Section = \"" + s + "\"");
      EXPECT_TRUE(mu.ok());
      schema.fragments.emplace_back(frag::HorizontalDef{"f_" + s, *mu});
    }
    EXPECT_TRUE(publisher_
                    .PublishFragmented(*items, schema, {},
                                       replication_factor)
                    .ok());
    // f_CD -> node 0, f_DVD -> node 1, f_BOOK -> node 2, f_TOY -> node 3
    // (+ backups on the next node(s) when replicated).
  }

  DistributionCatalog catalog_;
  ClusterSim cluster_;
  DataPublisher publisher_;
  QueryService service_;
};

class ReplicatedFailoverTest : public FailoverTestBase {
 protected:
  ReplicatedFailoverTest() : FailoverTestBase(2) {}
};

class UnreplicatedFailoverTest : public FailoverTestBase {
 protected:
  UnreplicatedFailoverTest() : FailoverTestBase(1) {}
};

const char* const kWorkload[] = {
    "count(collection(\"items\")/Item)",
    "for $i in collection(\"items\")/Item where $i/Section = \"DVD\" "
    "return $i/Name",
    "for $i in collection(\"items\")/Item "
    "where contains($i/Description, \"good\") return $i/Name",
};

TEST_F(ReplicatedFailoverTest, FailoverSurvivesPermanentNodeLoss) {
  ExecutionOptions options;
  options.retry = FastRetry(3);

  // Healthy baseline for every workload query.
  std::vector<std::string> baseline;
  for (const char* q : kWorkload) {
    auto result = service_.Execute(q, options);
    ASSERT_TRUE(result.ok()) << q << ": " << result.status();
    EXPECT_EQ(result->failovers, 0u) << q;
    baseline.push_back(result->serialized);
  }

  // Node 1 (f_DVD primary, f_CD backup) dies permanently. Every query
  // still succeeds, byte-identically, via f_DVD's replica on node 2.
  cluster_.SetNodeDown(1, true);
  for (size_t i = 0; i < std::size(kWorkload); ++i) {
    auto result = service_.Execute(kWorkload[i], options);
    ASSERT_TRUE(result.ok()) << kWorkload[i] << ": " << result.status();
    EXPECT_EQ(result->serialized, baseline[i]) << kWorkload[i];
    EXPECT_TRUE(result->complete);
    EXPECT_GE(result->failovers, 1u) << kWorkload[i];
    // The failed-over sub-query records where it actually ran.
    for (const SubQueryStats& stats : result->subqueries) {
      if (stats.fragment == "f_DVD") EXPECT_EQ(stats.node, 2u);
    }
  }
}

TEST_F(ReplicatedFailoverTest, AllReplicasDownFailsWithCanonicalTokens) {
  cluster_.SetNodeDown(1, true);  // f_DVD primary
  cluster_.SetNodeDown(2, true);  // f_DVD backup (and f_BOOK primary)
  auto result = service_.Execute("count(collection(\"items\")/Item)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  const std::string& message = result.status().message();
  EXPECT_TRUE(Contains(message, "f_DVD@node1")) << message;
  EXPECT_TRUE(Contains(message, "f_DVD@node2")) << message;
  // f_BOOK survives on its backup (node 3): not reported.
  EXPECT_FALSE(Contains(message, "f_BOOK")) << message;
  EXPECT_TRUE(
      std::regex_search(message, std::regex("f_[A-Z]+@node[0-9]+")))
      << message;
}

TEST_F(UnreplicatedFailoverTest, PartialPolicyListsExactlyMissingFragments) {
  cluster_.SetNodeDown(1, true);  // f_DVD
  cluster_.SetNodeDown(3, true);  // f_TOY

  ExecutionOptions fail_options;
  EXPECT_FALSE(
      service_.Execute(kWorkload[0], fail_options).ok());

  ExecutionOptions partial;
  partial.partial_results = PartialResultPolicy::kReturnPartial;
  auto result = service_.Execute(
      "for $i in collection(\"items\")/Item return $i/Name", partial);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->complete);
  EXPECT_EQ(result->missing_fragments,
            (std::vector<std::string>{"f_DVD", "f_TOY"}));
  // Exactly the reachable fragments contributed.
  ASSERT_EQ(result->subqueries.size(), 2u);
  EXPECT_EQ(result->subqueries[0].fragment, "f_CD");
  EXPECT_EQ(result->subqueries[1].fragment, "f_BOOK");
  EXPECT_FALSE(result->serialized.empty());

  // A healthy cluster reports complete results and no missing fragments.
  cluster_.SetNodeDown(1, false);
  cluster_.SetNodeDown(3, false);
  auto healthy = service_.Execute(
      "for $i in collection(\"items\")/Item return $i/Name", partial);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_TRUE(healthy->complete);
  EXPECT_TRUE(healthy->missing_fragments.empty());
}

TEST_F(UnreplicatedFailoverTest, TransientErrorsAreRetriedDeterministically) {
  // The node rejects its first two engine requests, then heals: the
  // executor's bounded retry rides it out.
  FaultProfile profile;
  profile.fail_first_requests = 2;
  cluster_.SetFaultProfile(1, profile);  // f_DVD

  ExecutionOptions options;
  options.retry = FastRetry(4);
  auto result = service_.Execute(kWorkload[1], options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->retries, 2u);
  EXPECT_EQ(result->failovers, 0u);
  ASSERT_EQ(result->subqueries.size(), 1u);
  EXPECT_EQ(result->subqueries[0].attempts, 3u);

  // Retries exhausted before the node heals -> the query fails, naming
  // the fragment at its node.
  cluster_.SetFaultProfile(1, profile);
  options.retry = FastRetry(2);
  auto failed = service_.Execute(kWorkload[1], options);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(Contains(failed.status().message(), "f_DVD@node1"))
      << failed.status().message();
}

TEST_F(UnreplicatedFailoverTest, CircuitBreakerOpensAndStopsTraffic) {
  CircuitBreakerPolicy policy;
  policy.failure_threshold = 2;
  policy.open_ms = 1e9;  // stays open for the whole test
  cluster_.executor().set_breaker_policy(policy);

  // Every request is rejected (but still counted by the fault gate).
  FaultProfile profile;
  profile.fail_first_requests = 1000000;
  cluster_.SetFaultProfile(1, profile);  // f_DVD

  ExecutionOptions options;
  options.retry = FastRetry(2);
  EXPECT_FALSE(service_.Execute(kWorkload[1], options).ok());
  EXPECT_EQ(cluster_.NodeRequestCount(1), 2u);
  EXPECT_TRUE(cluster_.executor().breaker_open(1));

  // With the breaker open the node is not contacted at all.
  auto blocked = service_.Execute(kWorkload[1], options);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(Contains(blocked.status().message(), "circuit open"))
      << blocked.status().message();
  EXPECT_EQ(cluster_.NodeRequestCount(1), 2u);

  // Healthy nodes are unaffected by node 1's breaker.
  auto cd = service_.Execute(
      "for $i in collection(\"items\")/Item where $i/Section = \"CD\" "
      "return $i/Name",
      options);
  EXPECT_TRUE(cd.ok()) << cd.status();
}

TEST_F(UnreplicatedFailoverTest, CircuitBreakerHalfOpenProbeRecovers) {
  CircuitBreakerPolicy policy;
  policy.failure_threshold = 1;
  policy.open_ms = 0.0;  // probe due immediately
  cluster_.executor().set_breaker_policy(policy);

  FaultProfile profile;
  profile.fail_first_requests = 1;  // one rejection, then healthy
  cluster_.SetFaultProfile(1, profile);

  ExecutionOptions options;
  options.retry = FastRetry(1);
  EXPECT_FALSE(service_.Execute(kWorkload[1], options).ok());
  EXPECT_TRUE(cluster_.executor().breaker_open(1));

  // The half-open probe goes through, succeeds, and closes the breaker.
  auto recovered = service_.Execute(kWorkload[1], options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(cluster_.executor().breaker_open(1));
}

TEST_F(UnreplicatedFailoverTest, HalfOpenAdmitsOneProbeUnderConcurrentDispatch) {
  // The open->half-open transition hands out exactly ONE probe, even
  // when many dispatches race for it: trip node 1's breaker, heal the
  // node, then fire 8 concurrent queries at the due probe window. One
  // worker wins the probe and closes the breaker; the rest are refused
  // at the breaker (never contacting the node), retry, and drain
  // through the closed breaker. The probe counter says one probe, the
  // node-side request counter says trip + one engine request per query
  // — no thundering herd. Run under TSan via the PARTIX_SANITIZE=thread
  // build (scripts/check.sh); everything here is deterministic except
  // thread interleaving, which the invariants don't depend on.
  CircuitBreakerPolicy policy;
  policy.failure_threshold = 1;
  policy.open_ms = 0.0;  // probe due immediately once the breaker opens
  cluster_.executor().set_breaker_policy(policy);

  FaultProfile profile;
  profile.fail_first_requests = 1;  // one rejection trips it; then healthy
  cluster_.SetFaultProfile(1, profile);

  ExecutionOptions trip;
  trip.retry = FastRetry(1);
  EXPECT_FALSE(service_.Execute(kWorkload[1], trip).ok());
  EXPECT_TRUE(cluster_.executor().breaker_open(1));
  const uint64_t node1_after_trip = cluster_.NodeRequestCount(1);

  auto& registry = telemetry::MetricsRegistry::Global();
  telemetry::Counter* probes =
      registry.GetCounter("partix_breaker_half_open_probes_total");
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  const uint64_t probes_before = probes->Value();

  constexpr size_t kThreads = 8;
  ExecutionOptions options;
  options.retry = FastRetry(50);  // losers outlast the winner's probe
  options.retry.base_backoff_ms = 0.2;
  options.retry.max_backoff_ms = 1.0;
  std::atomic<bool> go{false};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      auto result = service_.Execute(kWorkload[1], options);
      if (!result.ok()) failures.fetch_add(1, std::memory_order_relaxed);
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();

  const uint64_t probes_after = probes->Value();
  registry.set_enabled(was_enabled);

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(probes_after - probes_before, 1u);
  EXPECT_FALSE(cluster_.executor().breaker_open(1));
  // Conservation: every query reached the engine exactly once — breaker
  // refusals during the probe never contacted the node.
  EXPECT_EQ(cluster_.NodeRequestCount(1) - node1_after_trip, kThreads);
}

TEST_F(ReplicatedFailoverTest, AttemptTimeoutFailsOverToReplica) {
  // Node 1 answers, but only after a 100 ms stall — slower than the
  // 30 ms per-attempt budget, so the executor hangs up and the replica
  // (node 2, no stall) serves the sub-query.
  FaultProfile profile;
  profile.latency_spike_rate = 1.0;
  profile.latency_spike_ms = 100.0;
  cluster_.SetFaultProfile(1, profile);

  ExecutionOptions options;
  options.retry = FastRetry(3);
  options.retry.attempt_timeout_ms = 30.0;
  auto result = service_.Execute(kWorkload[1], options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->failovers, 1u);
  EXPECT_EQ(result->timed_out_subqueries, 1u);
  ASSERT_EQ(result->subqueries.size(), 1u);
  EXPECT_EQ(result->subqueries[0].node, 2u);
}

TEST_F(UnreplicatedFailoverTest, SubQueryDeadlineBoundsTotalTime) {
  FaultProfile profile;
  profile.latency_spike_rate = 1.0;
  profile.latency_spike_ms = 100.0;
  cluster_.SetFaultProfile(1, profile);

  ExecutionOptions options;
  options.retry = FastRetry(10);
  options.retry.attempt_timeout_ms = 30.0;
  options.retry.subquery_deadline_ms = 50.0;
  auto result = service_.Execute(kWorkload[1], options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(Contains(result.status().message(), "f_DVD@node1"))
      << result.status().message();

  // Under the degraded policy the same deadline yields a partial result
  // naming exactly the timed-out fragment.
  cluster_.SetFaultProfile(1, profile);
  options.partial_results = PartialResultPolicy::kReturnPartial;
  auto partial = service_.Execute(kWorkload[1], options);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_FALSE(partial->complete);
  EXPECT_EQ(partial->missing_fragments,
            (std::vector<std::string>{"f_DVD"}));
  EXPECT_EQ(partial->timed_out_subqueries, 1u);
}

TEST_F(UnreplicatedFailoverTest, ExpiredDeadlineDiscardsLateSuccess) {
  // Regression for the deadline bug: an attempt whose *successful*
  // answer lands after the sub-query deadline has expired must be
  // discarded with the canonical deadline error, not returned as a
  // success that overshot its budget. Before the fix the attempt budget
  // was only attempt_timeout_ms, so with no per-attempt timeout a late
  // success sailed through.
  //
  // ManualClock auto-advance makes this deterministic without sleeping:
  // each clock read advances time 6 ms, so by the time the first attempt
  // is measured, 6 "ms" elapsed against a 10 ms deadline budget of 4 ms.
  auto plan = service_.decomposer().Decompose(kWorkload[1]);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->subqueries.size(), 1u);

  ManualClock clock;
  clock.set_auto_advance_millis(6.0);
  cluster_.executor().set_clock(&clock);

  DispatchOptions options;
  options.parallelism = 1;
  options.retry.max_attempts = 5;
  options.retry.base_backoff_ms = 0.0;  // isolate the budget path
  options.retry.subquery_deadline_ms = 10.0;

  std::vector<SubQueryOutcome> outcomes;
  cluster_.executor().Dispatch(plan->subqueries, options, &outcomes);
  cluster_.executor().set_clock(Clock::Monotonic());

  ASSERT_EQ(outcomes.size(), 1u);
  const SubQueryOutcome& out = outcomes[0];
  ASSERT_FALSE(out.result.ok()) << "late success must not be returned";
  EXPECT_EQ(out.result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(Contains(out.result.status().message(),
                       "sub-query deadline (10"))
      << out.result.status().message();
  EXPECT_TRUE(out.timed_out);
  EXPECT_EQ(out.attempts, 1u);
  // The engine really served the discarded attempt — accounting must say
  // so even though the result was thrown away.
  EXPECT_EQ(out.engine_requests, 1u);
  EXPECT_EQ(out.discarded_successes, 1u);
  EXPECT_EQ(out.timed_out_attempts, 1u);
  EXPECT_EQ(cluster_.NodeRequestCount(1), 1u);
}

TEST_F(UnreplicatedFailoverTest, DeadlineExpiryMidBackoffFailsFast) {
  // Regression for the deadline bug's backoff half: when the next
  // backoff sleep would outlive the remaining deadline, the executor
  // must fail immediately instead of sleeping the deadline away and
  // reporting the failure late.
  FaultProfile profile;
  profile.fail_first_requests = 1u << 20;  // every attempt rejected
  cluster_.SetFaultProfile(1, profile);

  ExecutionOptions options;
  options.retry.max_attempts = 5;
  options.retry.base_backoff_ms = 1000.0;  // sleep would dwarf the deadline
  options.retry.max_backoff_ms = 1000.0;
  options.retry.jitter = 0.0;
  options.retry.subquery_deadline_ms = 250.0;
  Stopwatch watch;
  auto result = service_.Execute(kWorkload[1], options);
  const double wall_ms = watch.ElapsedMillis();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(Contains(result.status().message(), "sub-query deadline (250"))
      << result.status().message();
  // Pre-fix the executor clamped the sleep to the remaining ~250 ms and
  // slept it; failing fast returns in a few milliseconds.
  EXPECT_LT(wall_ms, 100.0);
}

TEST_F(ReplicatedFailoverTest, LatencySpikeStallCappedAtAttemptBudget) {
  // Regression for the stall bug: node 1 spikes 30 s on every request
  // while the attempt budget is 25 ms. The worker used to sleep out the
  // whole spike before discarding the late answer — stalling the
  // sub-query far past its own deadline. Now the attempt hangs up at
  // the budget, fails fast with kDeadlineExceeded, and the replica
  // (node 2) answers within milliseconds.
  //
  // A ManualClock pins the executor's budget arithmetic (elapsed always
  // reads 0, so the budget is exactly attempt_timeout_ms); the
  // wall-clock Stopwatch then proves the worker really came back at the
  // ~25 ms budget, not the 30 s spike.
  FaultProfile profile;
  profile.latency_spike_rate = 1.0;
  profile.latency_spike_ms = 30'000.0;
  cluster_.SetFaultProfile(1, profile);

  ManualClock clock;
  service_.set_clock(&clock);
  ExecutionOptions options;
  options.retry = FastRetry(3);
  options.retry.attempt_timeout_ms = 25.0;
  const uint64_t node1_before = cluster_.NodeRequestCount(1);
  const uint64_t node2_before = cluster_.NodeRequestCount(2);
  Stopwatch watch;
  auto result = service_.Execute(kWorkload[1], options);
  const double wall_ms = watch.ElapsedMillis();
  service_.set_clock(Clock::Monotonic());
  ASSERT_TRUE(result.ok()) << result.status();

  // Far below the spike; generous headroom over the 25 ms capped stall.
  EXPECT_LT(wall_ms, 5000.0);

  ASSERT_EQ(result->subqueries.size(), 1u);
  const SubQueryStats& stats = result->subqueries[0];
  EXPECT_EQ(stats.node, 2u);
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_EQ(stats.timed_out_attempts, 1u);
  EXPECT_EQ(stats.discarded_successes, 0u);
  // Conservation: the capped attempt hung up before reaching node 1's
  // engine, so only node 2's serving request counts.
  EXPECT_EQ(stats.engine_requests, 1u);
  EXPECT_EQ(cluster_.NodeRequestCount(1) - node1_before, 0u);
  EXPECT_EQ(cluster_.NodeRequestCount(2) - node2_before, 1u);
  EXPECT_EQ(result->engine_requests, 1u);
  EXPECT_EQ(result->timed_out_subqueries, 1u);
}

TEST_F(ReplicatedFailoverTest, EngineRequestAccountingConservesAcrossWorkload) {
  // Under rate-based transient faults (which reject without consuming an
  // engine request) the executor-side engine_requests totals must equal
  // the node-side request counters exactly, across the whole workload.
  for (size_t node = 0; node < cluster_.node_count(); ++node) {
    FaultProfile profile;
    profile.transient_error_rate = 0.3;
    profile.seed = 100 + node;
    cluster_.SetFaultProfile(node, profile);  // also resets the counter
  }
  ExecutionOptions options;
  options.retry = FastRetry(6);
  size_t executor_total = 0;
  for (const char* q : kWorkload) {
    auto result = service_.Execute(q, options);
    ASSERT_TRUE(result.ok()) << q << ": " << result.status();
    executor_total += result->engine_requests;
  }
  uint64_t node_total = 0;
  for (size_t node = 0; node < cluster_.node_count(); ++node) {
    node_total += cluster_.NodeRequestCount(node);
  }
  EXPECT_EQ(executor_total, node_total);
}

TEST_F(UnreplicatedFailoverTest, FaultInjectionIsDeterministicUnderSeed) {
  FaultProfile profile;
  profile.transient_error_rate = 0.5;
  profile.seed = 7;

  auto run = [&]() -> Result<DistributedResult> {
    for (size_t node = 0; node < cluster_.node_count(); ++node) {
      FaultProfile p = profile;
      p.seed = profile.seed + node;
      cluster_.SetFaultProfile(node, p);  // resets counters + reseeds
    }
    cluster_.executor().ResetBreakers();
    ExecutionOptions options;
    options.retry = FastRetry(8);
    options.parallelism = 1;  // sequential: fault draws in plan order
    return service_.Execute(kWorkload[0], options);
  };

  auto first = run();
  auto second = run();
  ASSERT_EQ(first.ok(), second.ok());
  if (first.ok()) {
    EXPECT_EQ(first->serialized, second->serialized);
    EXPECT_EQ(first->retries, second->retries);
    EXPECT_EQ(first->failovers, second->failovers);
  } else {
    EXPECT_EQ(first.status().ToString(), second.status().ToString());
  }
}

TEST_F(ReplicatedFailoverTest, ReplicatedAndPrimaryResultsAgree) {
  // Replication must be invisible when everything is healthy: rf=2
  // results equal an unreplicated deployment's (both equal the healthy
  // baseline by construction, so compare across parallelism too).
  ExecutionOptions sequential;
  ExecutionOptions parallel;
  parallel.parallelism = 0;
  for (const char* q : kWorkload) {
    auto a = service_.Execute(q, sequential);
    auto b = service_.Execute(q, parallel);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->serialized, b->serialized) << q;
  }
}

}  // namespace
}  // namespace partix::middleware
