#include <algorithm>
#include <memory>
#include <vector>

#include "gen/virtual_store.h"
#include "gen/xbench.h"
#include "gtest/gtest.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/decomposer.h"
#include "partix/publisher.h"
#include "common/strings.h"
#include "partix/query_service.h"

namespace partix::middleware {
namespace {

using frag::FragmentationSchema;
using frag::FragmentDef;
using frag::HorizontalDef;
using frag::HybridDef;
using frag::HybridMode;
using frag::VerticalDef;

xpath::Path P(const std::string& text) {
  auto result = xpath::Path::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

xpath::Conjunction Mu(const std::string& text) {
  auto result = xpath::Conjunction::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

/// Result order across fragments is not defined; compare as multisets of
/// lines.
std::string SortLines(const std::string& text) {
  auto lines = Split(text, '\n');
  std::vector<std::string> owned(lines.begin(), lines.end());
  std::sort(owned.begin(), owned.end());
  return Join(owned, "\n");
}

TEST(CatalogTest, SchemaCatalog) {
  SchemaCatalog catalog;
  EXPECT_TRUE(catalog.Register("vs", xml::VirtualStoreSchema()).ok());
  EXPECT_EQ(catalog.Register("vs", xml::VirtualStoreSchema()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(catalog.Get("vs").ok());
  EXPECT_FALSE(catalog.Get("nope").ok());
  EXPECT_EQ(catalog.Names().size(), 1u);
}

TEST(CatalogTest, DistributionCatalog) {
  DistributionCatalog catalog;
  FragmentationSchema schema;
  schema.collection = "items";
  schema.fragments.emplace_back(
      HorizontalDef{"f1", Mu("/Item/Section = \"CD\"")});
  schema.fragments.emplace_back(
      HorizontalDef{"f2", Mu("/Item/Section != \"CD\"")});

  // Missing placements rejected.
  EXPECT_FALSE(catalog.Register(schema, {{"f1", 0}}).ok());
  ASSERT_TRUE(catalog.Register(schema, {{"f1", 0}, {"f2", 1}}).ok());
  EXPECT_TRUE(catalog.IsFragmented("items"));
  EXPECT_FALSE(catalog.IsFragmented("other"));
  auto entry = catalog.Get("items");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(*(*entry)->NodeOf("f2"), 1u);
  EXPECT_FALSE((*entry)->NodeOf("f9").ok());

  EXPECT_TRUE(catalog.RegisterCentralized("central", 0).ok());
  EXPECT_EQ(*catalog.CentralizedNode("central"), 0u);
  EXPECT_FALSE(catalog.CentralizedNode("items").ok());
  // Double registration rejected.
  EXPECT_FALSE(catalog.RegisterCentralized("items", 0).ok());
}

/// End-to-end fixture: a 4-node cluster with the items collection both
/// centralized (as "items_c") and horizontally fragmented by Section.
class HorizontalE2E : public ::testing::Test {
 protected:
  HorizontalE2E()
      : cluster_(4, xdb::DatabaseOptions(), NetworkModel()),
        publisher_(&cluster_, &catalog_),
        service_(&cluster_, &catalog_) {
    gen::ItemsGenOptions options;
    options.doc_count = 60;
    options.seed = 99;
    options.sections = {"CD", "DVD", "BOOK", "TOY"};
    auto items = gen::GenerateItems(options, nullptr);
    EXPECT_TRUE(items.ok()) << items.status();
    items_ = std::move(*items);

    xml::Collection central = items_;
    // Same docs, published under a different collection name.
    xml::Collection central_named("items_c", items_.schema(),
                                  items_.root_path(), items_.kind());
    for (const auto& doc : items_.docs()) {
      EXPECT_TRUE(central_named.Add(doc).ok());
    }
    EXPECT_TRUE(publisher_.PublishCentralized(central_named, 0).ok());

    FragmentationSchema schema;
    schema.collection = "items";
    schema.fragments.emplace_back(
        HorizontalDef{"f_cd", Mu("/Item/Section = \"CD\"")});
    schema.fragments.emplace_back(
        HorizontalDef{"f_dvd", Mu("/Item/Section = \"DVD\"")});
    schema.fragments.emplace_back(
        HorizontalDef{"f_book", Mu("/Item/Section = \"BOOK\"")});
    schema.fragments.emplace_back(
        HorizontalDef{"f_toy", Mu("/Item/Section = \"TOY\"")});
    EXPECT_TRUE(publisher_.PublishFragmented(items_, schema).ok());
  }

  /// Runs `query` against the fragmented collection and the same query
  /// (with the collection renamed) against the centralized copy, checking
  /// the answers match.
  void ExpectSameAnswer(const std::string& query) {
    auto distributed = service_.Execute(query);
    ASSERT_TRUE(distributed.ok()) << query << ": " << distributed.status();
    std::string central_query = query;
    size_t pos;
    while ((pos = central_query.find("\"items\"")) != std::string::npos) {
      central_query.replace(pos, 7, "\"items_c\"");
    }
    auto central = cluster_.node(0).Execute(central_query);
    ASSERT_TRUE(central.ok()) << central_query << ": " << central.status();
    EXPECT_EQ(SortLines(distributed->serialized),
              SortLines(central->serialized))
        << query;
  }

  DistributionCatalog catalog_;
  ClusterSim cluster_;
  DataPublisher publisher_;
  QueryService service_;
  xml::Collection items_;
};

TEST_F(HorizontalE2E, SelectiveQueryIsLocalizedToOneFragment) {
  auto plan = service_.decomposer().Decompose(
      "for $i in collection(\"items\")/Item "
      "where $i/Section = \"CD\" return $i/Name");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->subqueries.size(), 1u);
  EXPECT_EQ(plan->subqueries[0].fragment, "f_cd");
  EXPECT_EQ(plan->pruned_fragments, 3u);
}

TEST_F(HorizontalE2E, NonSelectiveQueryGoesEverywhere) {
  auto plan = service_.decomposer().Decompose(
      "for $i in collection(\"items\")/Item return $i/Code");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->subqueries.size(), 4u);
  EXPECT_EQ(plan->composition, Composition::kUnion);
}

TEST_F(HorizontalE2E, CountDecomposesToSum) {
  auto plan = service_.decomposer().Decompose(
      "count(collection(\"items\")/Item)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->composition, Composition::kSumCounts);
  ExpectSameAnswer("count(collection(\"items\")/Item)");
}

TEST_F(HorizontalE2E, RangePredicateLocalization) {
  // Numeric contradiction: Section is a string here, but Code works.
  auto plan = service_.decomposer().Decompose(
      "for $i in collection(\"items\")/Item "
      "where $i/Section = \"DVD\" and $i/Code < 10 return $i/Code");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->subqueries.size(), 1u);
  EXPECT_EQ(plan->subqueries[0].fragment, "f_dvd");
}

TEST_F(HorizontalE2E, DistributedAnswersMatchCentralized) {
  ExpectSameAnswer("for $i in collection(\"items\")/Item "
                   "where $i/Section = \"CD\" return $i/Name");
  ExpectSameAnswer("count(collection(\"items\")/Item[Section = \"DVD\"])");
  ExpectSameAnswer(
      "for $i in collection(\"items\")/Item "
      "where contains($i/Description, \"good\") return $i/Code");
  ExpectSameAnswer(
      "count(for $i in collection(\"items\")/Item "
      "where contains($i/Description, \"good\") return $i)");
  ExpectSameAnswer("for $i in collection(\"items\")/Item "
                   "where $i/Code < 5 return $i/Section");
  ExpectSameAnswer("count(collection(\"items\")/Item[PictureList])");
}

TEST_F(HorizontalE2E, TimingModelIsPopulated) {
  auto result = service_.Execute("count(collection(\"items\")/Item)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->subqueries.size(), 4u);
  EXPECT_GT(result->response_ms, 0.0);
  EXPECT_GE(result->sum_node_ms, result->slowest_node_ms);
  EXPECT_GT(result->transmission_ms, 0.0);
  ExecutionOptions no_net;
  no_net.include_transmission = false;
  auto result2 = service_.Execute("count(collection(\"items\")/Item)",
                                  no_net);
  ASSERT_TRUE(result2.ok());
  // Without transmission, the response is decomposition + slowest node +
  // composition only.
  EXPECT_NEAR(result2->response_ms,
              result2->decompose_ms + result2->slowest_node_ms +
                  result2->composition_ms,
              1e-9);
}

TEST_F(HorizontalE2E, CentralizedPlanForUnfragmentedCollection) {
  auto plan = service_.decomposer().Decompose(
      "count(collection(\"items_c\")/Item)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->subqueries.size(), 1u);
  EXPECT_EQ(plan->subqueries[0].node, 0u);
}

TEST_F(HorizontalE2E, UnknownCollectionFails) {
  EXPECT_FALSE(service_.Execute("count(collection(\"nope\")/x)").ok());
}

/// Vertical end-to-end over the XBench article collection.
class VerticalE2E : public ::testing::Test {
 protected:
  VerticalE2E()
      : cluster_(3, xdb::DatabaseOptions(), NetworkModel()),
        publisher_(&cluster_, &catalog_),
        service_(&cluster_, &catalog_) {
    gen::XBenchGenOptions options;
    options.doc_count = 12;
    options.target_doc_bytes = 4000;
    options.seed = 5;
    auto articles = gen::GenerateArticles(options, nullptr);
    EXPECT_TRUE(articles.ok()) << articles.status();
    articles_ = std::move(*articles);

    xml::Collection central("papers_c", articles_.schema(),
                            articles_.root_path(), articles_.kind());
    for (const auto& doc : articles_.docs()) {
      EXPECT_TRUE(central.Add(doc).ok());
    }
    EXPECT_TRUE(publisher_.PublishCentralized(central, 0).ok());

    FragmentationSchema schema;
    schema.collection = "papers";
    schema.fragments.emplace_back(
        VerticalDef{"f_prolog", P("/article/prolog"), {}});
    schema.fragments.emplace_back(
        VerticalDef{"f_body", P("/article/body"), {}});
    schema.fragments.emplace_back(
        VerticalDef{"f_epilog", P("/article/epilog"), {}});
    EXPECT_TRUE(publisher_.PublishFragmented(articles_, schema).ok());
  }

  void ExpectSameAnswer(const std::string& query) {
    auto distributed = service_.Execute(query);
    ASSERT_TRUE(distributed.ok()) << query << ": " << distributed.status();
    std::string central_query = query;
    size_t pos;
    while ((pos = central_query.find("\"papers\"")) != std::string::npos) {
      central_query.replace(pos, 8, "\"papers_c\"");
    }
    auto central = cluster_.node(0).Execute(central_query);
    ASSERT_TRUE(central.ok()) << central.status();
    EXPECT_EQ(SortLines(distributed->serialized),
              SortLines(central->serialized))
        << query;
  }

  DistributionCatalog catalog_;
  ClusterSim cluster_;
  DataPublisher publisher_;
  QueryService service_;
  xml::Collection articles_;
};

TEST_F(VerticalE2E, SingleFragmentQueryIsRewritten) {
  auto plan = service_.decomposer().Decompose(
      "for $a in collection(\"papers\")/article "
      "return $a/prolog/title");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->subqueries.size(), 1u);
  EXPECT_EQ(plan->subqueries[0].fragment, "f_prolog");
  EXPECT_NE(plan->subqueries[0].query.find("f_prolog"),
            std::string::npos);
}

TEST_F(VerticalE2E, SingleFragmentAnswersMatch) {
  ExpectSameAnswer("for $a in collection(\"papers\")/article "
                   "return $a/prolog/title");
  ExpectSameAnswer(
      "count(collection(\"papers\")/article/prolog/authors/author)");
  ExpectSameAnswer(
      "for $a in collection(\"papers\")/article "
      "where $a/prolog/genre = \"survey\" return $a/prolog/title");
}

TEST_F(VerticalE2E, MultiFragmentQueryFallsBackToJoin) {
  const std::string query =
      "for $a in collection(\"papers\")/article "
      "where $a/prolog/genre = \"survey\" "
      "return count($a/epilog/references/reference)";
  auto plan = service_.decomposer().Decompose(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->composition, Composition::kJoinReconstruct);
  // body fragment not needed.
  EXPECT_EQ(plan->subqueries.size(), 2u);
  ExpectSameAnswer(query);
}

TEST_F(VerticalE2E, TextSearchTouchingBodyOnly) {
  ExpectSameAnswer(
      "count(for $a in collection(\"papers\")/article "
      "where contains($a/body/abstract, \"database\") return "
      "$a/body/abstract)");
}

/// Hybrid end-to-end over the SD store.
class HybridE2E : public ::testing::TestWithParam<HybridMode> {
 protected:
  HybridE2E()
      : cluster_(5, xdb::DatabaseOptions(), NetworkModel()),
        publisher_(&cluster_, &catalog_),
        service_(&cluster_, &catalog_) {
    gen::StoreGenOptions options;
    options.item_count = 40;
    options.seed = 3;
    options.large_items = false;
    options.sections = {"CD", "DVD", "BOOK"};
    auto store = gen::GenerateStore(options, nullptr);
    EXPECT_TRUE(store.ok()) << store.status();
    store_ = std::move(*store);

    xml::Collection central("store_c", store_.schema(), store_.root_path(),
                            store_.kind());
    for (const auto& doc : store_.docs()) {
      EXPECT_TRUE(central.Add(doc).ok());
    }
    EXPECT_TRUE(publisher_.PublishCentralized(central, 0).ok());

    FragmentationSchema schema;
    schema.collection = "store";
    schema.hybrid_mode = GetParam();
    schema.fragments.emplace_back(HybridDef{
        "f_cd", P("/Store/Items"), {}, Mu("/Item/Section = \"CD\"")});
    schema.fragments.emplace_back(HybridDef{
        "f_dvd", P("/Store/Items"), {}, Mu("/Item/Section = \"DVD\"")});
    schema.fragments.emplace_back(
        HybridDef{"f_rest", P("/Store/Items"), {},
                  Mu("/Item/Section != \"CD\" and "
                     "/Item/Section != \"DVD\"")});
    schema.fragments.emplace_back(HybridDef{
        "f_store", P("/Store"), {P("/Store/Items")}, Mu("true")});
    EXPECT_TRUE(publisher_.PublishFragmented(store_, schema).ok());
  }

  void ExpectSameAnswer(const std::string& query) {
    auto distributed = service_.Execute(query);
    ASSERT_TRUE(distributed.ok()) << query << ": " << distributed.status();
    std::string central_query = query;
    size_t pos;
    while ((pos = central_query.find("\"store\"")) != std::string::npos) {
      central_query.replace(pos, 7, "\"store_c\"");
    }
    auto central = cluster_.node(0).Execute(central_query);
    ASSERT_TRUE(central.ok()) << central.status();
    EXPECT_EQ(SortLines(distributed->serialized),
              SortLines(central->serialized))
        << query;
  }

  DistributionCatalog catalog_;
  ClusterSim cluster_;
  DataPublisher publisher_;
  QueryService service_;
  xml::Collection store_;
};

TEST_P(HybridE2E, SectionQueryLocalizedToOneFragment) {
  auto plan = service_.decomposer().Decompose(
      "for $i in collection(\"store\")/Store/Items/Item "
      "where $i/Section = \"CD\" return $i/Name");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->subqueries.size(), 1u);
  EXPECT_EQ(plan->subqueries[0].fragment, "f_cd");
}

TEST_P(HybridE2E, SectionQueryAnswersMatch) {
  ExpectSameAnswer("for $i in collection(\"store\")/Store/Items/Item "
                   "where $i/Section = \"CD\" return $i/Name");
}

TEST_P(HybridE2E, AllItemsQueryUnionsInstanceFragments) {
  const std::string query =
      "count(collection(\"store\")/Store/Items/Item)";
  auto plan = service_.decomposer().Decompose(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->subqueries.size(), 3u);
  EXPECT_EQ(plan->composition, Composition::kSumCounts);
  ExpectSameAnswer(query);
}

TEST_P(HybridE2E, PrunedFragmentServesStoreQueries) {
  const std::string query =
      "for $s in collection(\"store\")/Store/Sections/Section "
      "return $s/Name";
  auto plan = service_.decomposer().Decompose(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->subqueries.size(), 1u);
  EXPECT_EQ(plan->subqueries[0].fragment, "f_store");
  ExpectSameAnswer(query);
  ExpectSameAnswer(
      "count(collection(\"store\")/Store/Employees/Employee)");
}

TEST_P(HybridE2E, TextSearchGoesToAllInstanceFragments) {
  const std::string query =
      "count(for $i in collection(\"store\")/Store/Items/Item "
      "where contains($i/Description, \"good\") return $i)";
  auto plan = service_.decomposer().Decompose(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->subqueries.size(), 3u);
  ExpectSameAnswer(query);
}

/// Vertical fragmentation of an MD collection where one fragment is
/// *optional* per document (PictureList): exercises middleware joins over
/// partial groups (some source documents have no fragment instance).
class VerticalOptionalFragmentE2E : public ::testing::Test {
 protected:
  VerticalOptionalFragmentE2E()
      : cluster_(3, xdb::DatabaseOptions(), NetworkModel()),
        publisher_(&cluster_, &catalog_),
        service_(&cluster_, &catalog_) {
    gen::ItemsGenOptions options;
    options.doc_count = 30;
    options.seed = 55;
    options.large_docs = true;  // items carry PictureList/PricesHistory
    auto items = gen::GenerateItems(options, nullptr);
    EXPECT_TRUE(items.ok());
    // Mix in a few small docs (no PictureList) so the pictures fragment
    // has gaps.
    gen::ItemsGenOptions small = options;
    small.large_docs = false;
    small.doc_count = 10;
    small.seed = 56;
    small.name = "tiny";
    auto tiny = gen::GenerateItems(small, nullptr);
    EXPECT_TRUE(tiny.ok());
    xml::Collection data("items", items->schema(), items->root_path(),
                         items->kind());
    for (const auto& doc : items->docs()) EXPECT_TRUE(data.Add(doc).ok());
    for (const auto& doc : tiny->docs()) EXPECT_TRUE(data.Add(doc).ok());

    xml::Collection central("items_c", data.schema(), data.root_path(),
                            data.kind());
    for (const auto& doc : data.docs()) {
      EXPECT_TRUE(central.Add(doc).ok());
    }
    EXPECT_TRUE(publisher_.PublishCentralized(central, 0).ok());

    frag::FragmentationSchema schema;
    schema.collection = "items";
    schema.fragments.emplace_back(frag::VerticalDef{
        "f_item", P("/Item"), {P("/Item/PictureList")}});
    schema.fragments.emplace_back(
        frag::VerticalDef{"f_pics", P("/Item/PictureList"), {}});
    EXPECT_TRUE(publisher_.PublishFragmented(data, schema).ok());
  }

  void ExpectSameAnswer(const std::string& query) {
    auto distributed = service_.Execute(query);
    ASSERT_TRUE(distributed.ok()) << query << ": " << distributed.status();
    std::string central_query = query;
    size_t pos;
    while ((pos = central_query.find("\"items\"")) != std::string::npos) {
      central_query.replace(pos, 7, "\"items_c\"");
    }
    auto central = cluster_.node(0).Execute(central_query);
    ASSERT_TRUE(central.ok()) << central.status();
    EXPECT_EQ(SortLines(distributed->serialized),
              SortLines(central->serialized))
        << query;
  }

  DistributionCatalog catalog_;
  ClusterSim cluster_;
  DataPublisher publisher_;
  QueryService service_;
};

TEST_F(VerticalOptionalFragmentE2E, SingleFragmentQueries) {
  ExpectSameAnswer("count(collection(\"items\")/Item/Code)");
  ExpectSameAnswer(
      "count(collection(\"items\")/Item/PictureList/Picture)");
  ExpectSameAnswer("for $i in collection(\"items\")/Item "
                   "where $i/Code = 3 return $i/Name");
}

TEST_F(VerticalOptionalFragmentE2E, JoinOverPartialGroups) {
  // Needs both fragments; tiny documents have no pictures fragment.
  ExpectSameAnswer(
      "count(for $i in collection(\"items\")/Item "
      "where $i/Section = \"CD\" "
      "return count($i/PictureList/Picture))");
  ExpectSameAnswer(
      "sum(for $i in collection(\"items\")/Item "
      "return count($i/PictureList/Picture))");
}

TEST_F(VerticalOptionalFragmentE2E, ExistentialOverOptionalFragment) {
  ExpectSameAnswer("count(collection(\"items\")/Item[PictureList])");
}

INSTANTIATE_TEST_SUITE_P(
    Modes, HybridE2E,
    ::testing::Values(HybridMode::kSinglePrunedDoc,
                      HybridMode::kOneDocPerSubtree),
    [](const ::testing::TestParamInfo<HybridMode>& info) {
      return info.param == HybridMode::kSinglePrunedDoc ? "FragMode2"
                                                        : "FragMode1";
    });

}  // namespace
}  // namespace partix::middleware
