// Memory governance subsystem tests (docs/memory.md):
//
//   - ArenaPool: size classes, chunk recycling across arenas, the
//     retained-bytes cap, oversize handling, fragmentation accounting,
//     Trim, and concurrent acquire/release
//   - Arena: pooled vs direct byte-accounting parity, move semantics
//   - xml::Document byte identity: pooled and direct parses serialize
//     identically and report identical ApproxBytes (cache eviction
//     behaves the same with pooling on or off)
//   - MemoryGovernor: charge/release/headroom, priority-ordered
//     eviction, pinned consumers and the overcommit counter, budget
//     shrink pressure, callback re-entrancy
//   - governed consumers: DocumentStore parse-cache shedding, PlanCache
//     byte bound, Database end-to-end under a tiny budget

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "gtest/gtest.h"
#include "memory/arena.h"
#include "memory/governor.h"
#include "storage/document_store.h"
#include "xml/name_pool.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace partix::memory {
namespace {

constexpr size_t KiB = size_t{1} << 10;

// --- ArenaPool -----------------------------------------------------------

TEST(ArenaPoolTest, AcquireRoundsUpToSizeClass) {
  ArenaPool pool;
  ArenaPool::Chunk* small = pool.Acquire(1);
  EXPECT_EQ(small->capacity, pool.options().min_chunk_bytes);
  ArenaPool::Chunk* mid = pool.Acquire(16 * KiB + 1);
  EXPECT_EQ(mid->capacity, 32 * KiB);
  pool.Release(small, 1);
  pool.Release(mid, 16 * KiB + 1);
}

TEST(ArenaPoolTest, ReleasedChunksAreReused) {
  ArenaPool pool;
  ArenaPool::Chunk* first = pool.Acquire(1);
  pool.Release(first, 100);
  ArenaPoolStats after_release = pool.stats();
  EXPECT_EQ(after_release.chunks_recycled, 1u);
  EXPECT_EQ(after_release.retained_bytes, pool.options().min_chunk_bytes);
  EXPECT_EQ(after_release.outstanding_bytes, 0u);

  ArenaPool::Chunk* second = pool.Acquire(1);
  ArenaPoolStats after_reuse = pool.stats();
  EXPECT_EQ(after_reuse.chunks_reused, 1u);
  EXPECT_EQ(after_reuse.chunks_created, 1u);  // still just the first
  EXPECT_EQ(after_reuse.retained_bytes, 0u);
  pool.Release(second, 0);
}

TEST(ArenaPoolTest, ALargerFreeChunkServesASmallerRequest) {
  ArenaPool pool;
  ArenaPool::Chunk* big = pool.Acquire(64 * KiB);
  pool.Release(big, 64 * KiB);
  // A min-class request is served from the idle 64 KiB chunk rather than
  // allocating fresh.
  ArenaPool::Chunk* chunk = pool.Acquire(1);
  EXPECT_EQ(chunk->capacity, 64 * KiB);
  EXPECT_EQ(pool.stats().chunks_reused, 1u);
  pool.Release(chunk, 1);
}

TEST(ArenaPoolTest, OversizeChunksAreNeverRetained) {
  ArenaPool pool;
  const size_t oversize = pool.options().max_chunk_bytes * 2;
  ArenaPool::Chunk* chunk = pool.Acquire(oversize);
  EXPECT_GE(chunk->capacity, oversize);
  pool.Release(chunk, oversize);
  ArenaPoolStats stats = pool.stats();
  EXPECT_EQ(stats.chunks_freed, 1u);
  EXPECT_EQ(stats.retained_bytes, 0u);
}

TEST(ArenaPoolTest, RetainedCapBoundsIdleBytes) {
  ArenaPoolOptions options;
  options.max_retained_bytes = 32 * KiB;  // room for two min-class chunks
  ArenaPool pool(options);
  std::vector<ArenaPool::Chunk*> chunks;
  for (int i = 0; i < 4; ++i) chunks.push_back(pool.Acquire(1));
  for (ArenaPool::Chunk* c : chunks) pool.Release(c, 1);
  ArenaPoolStats stats = pool.stats();
  EXPECT_LE(stats.retained_bytes, options.max_retained_bytes);
  EXPECT_EQ(stats.chunks_recycled, 2u);
  EXPECT_EQ(stats.chunks_freed, 2u);
}

TEST(ArenaPoolTest, FragmentationReflectsUnusedReleasedCapacity) {
  ArenaPool pool;
  ArenaPool::Chunk* chunk = pool.Acquire(1);  // 16 KiB class
  pool.Release(chunk, 4 * KiB);               // quarter used
  EXPECT_NEAR(pool.stats().fragmentation_pct(), 75.0, 0.1);
}

TEST(ArenaPoolTest, TrimReturnsIdleCapacity) {
  ArenaPool pool;
  ArenaPool::Chunk* chunk = pool.Acquire(1);
  pool.Release(chunk, 1);
  ASSERT_GT(pool.stats().retained_bytes, 0u);
  pool.Trim();
  ArenaPoolStats stats = pool.stats();
  EXPECT_EQ(stats.retained_bytes, 0u);
  EXPECT_EQ(stats.chunks_freed, 1u);
}

TEST(ArenaPoolTest, ConcurrentAcquireReleaseConserves) {
  ArenaPool pool;
  constexpr int kThreads = 4;
  constexpr int kIterations = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < kIterations; ++i) {
        Arena arena(&pool);
        arena.Allocate(1000);
        arena.CopyString("concurrent arena traffic");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ArenaPoolStats stats = pool.stats();
  EXPECT_EQ(stats.outstanding_bytes, 0u);  // every chain came back
  // Conservation: every acquisition (fresh or reused) was matched by a
  // release that either recycled or freed the chunk.
  EXPECT_EQ(stats.chunks_created + stats.chunks_reused,
            stats.chunks_recycled + stats.chunks_freed);
  EXPECT_GT(stats.chunks_reused, 0u);  // recycling actually happened
}

// --- Arena ---------------------------------------------------------------

TEST(ArenaTest, PooledAndDirectByteAccountingMatch) {
  ArenaPool pool;
  Arena pooled(&pool);
  Arena direct;
  for (int i = 0; i < 50; ++i) {
    const size_t n = 1 + static_cast<size_t>(i) * 7;
    pooled.Allocate(n, 1);
    direct.Allocate(n, 1);
    pooled.CopyString("text payload");
    direct.CopyString("text payload");
  }
  EXPECT_EQ(pooled.used_bytes(), direct.used_bytes());
  EXPECT_TRUE(pooled.pooled());
  EXPECT_FALSE(direct.pooled());
}

TEST(ArenaTest, CopyStringIsStableAndIndependent) {
  ArenaPool pool;
  Arena arena(&pool);
  std::string original = "the quick brown fox";
  std::string_view copy = arena.CopyString(original);
  original.assign(original.size(), 'x');
  EXPECT_EQ(copy, "the quick brown fox");
  EXPECT_EQ(arena.CopyString(""), std::string_view());
}

TEST(ArenaTest, MoveTransfersTheChainOnce) {
  ArenaPool pool;
  Arena a(&pool);
  std::string_view s = a.CopyString("payload");
  Arena b(std::move(a));
  EXPECT_EQ(s, "payload");  // still backed by the moved-to arena
  EXPECT_EQ(a.used_bytes(), 0u);
  EXPECT_GT(b.used_bytes(), 0u);
  Arena c;
  c = std::move(b);
  EXPECT_EQ(s, "payload");
  EXPECT_EQ(b.used_bytes(), 0u);
  // c's destructor releases the chain exactly once (ASan would flag a
  // double release).
}

TEST(ArenaTest, ClearRecyclesIntoThePool) {
  ArenaPool pool;
  Arena arena(&pool);
  arena.Allocate(100);
  EXPECT_GT(arena.capacity_bytes(), 0u);
  arena.Clear();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.capacity_bytes(), 0u);
  EXPECT_EQ(pool.stats().outstanding_bytes, 0u);
  EXPECT_GT(pool.stats().retained_bytes, 0u);
}

// --- Document byte identity ----------------------------------------------

constexpr const char* kDoc =
    "<Item><Code>77</Code><Name>arena &amp; pool</Name>"
    "<Description>entities &lt;decode&gt; into scratch</Description>"
    "<Section>CD</Section></Item>";

TEST(DocumentArenaTest, PooledAndDirectParsesAreByteIdentical) {
  auto pool = std::make_shared<xml::NamePool>();
  ASSERT_TRUE(DocumentArenaPoolingEnabled());  // default is on
  auto pooled = xml::ParseXml(pool, "d", kDoc);
  ASSERT_TRUE(pooled.ok()) << pooled.status();

  SetDocumentArenaPooling(false);
  auto direct = xml::ParseXml(pool, "d", kDoc);
  SetDocumentArenaPooling(true);
  ASSERT_TRUE(direct.ok()) << direct.status();

  EXPECT_EQ(xml::Serialize(**pooled), xml::Serialize(**direct));
  EXPECT_EQ((*pooled)->ApproxBytes(), (*direct)->ApproxBytes());
}

// --- MemoryGovernor ------------------------------------------------------

TEST(GovernorTest, ChargeReleaseAndHeadroom) {
  MemoryGovernor governor(1000);
  EXPECT_EQ(governor.budget_bytes(), 1000u);
  EXPECT_EQ(governor.headroom_bytes(), 1000u);
  const int id = governor.RegisterConsumer("c", 0, nullptr);
  governor.Charge(id, 400);
  EXPECT_EQ(governor.charged_bytes(), 400u);
  EXPECT_EQ(governor.consumer_bytes(id), 400u);
  EXPECT_EQ(governor.headroom_bytes(), 600u);
  governor.Release(id, 400);
  EXPECT_EQ(governor.charged_bytes(), 0u);
  EXPECT_EQ(governor.headroom_bytes(), 1000u);
}

TEST(GovernorTest, UnregisterReleasesRemainingCharge) {
  MemoryGovernor governor(1000);
  const int id = governor.RegisterConsumer("c", 0, nullptr);
  governor.Charge(id, 700);
  governor.UnregisterConsumer(id);
  EXPECT_EQ(governor.charged_bytes(), 0u);
}

TEST(GovernorTest, PressureEvictsInAscendingPriorityOrder) {
  MemoryGovernor governor(1000);
  std::vector<std::string> order;
  size_t parse_held = 600;
  size_t plan_held = 300;
  int parse_id = 0;
  int plan_id = 0;
  parse_id = governor.RegisterConsumer(
      "parse", MemoryGovernor::kPriorityParseCache,
      [&](size_t) {
        order.push_back("parse");
        const size_t freed = parse_held;
        parse_held = 0;
        governor.Release(parse_id, freed);
        return freed;
      });
  plan_id = governor.RegisterConsumer(
      "plan", MemoryGovernor::kPriorityPlanCache,
      [&](size_t) {
        order.push_back("plan");
        const size_t freed = plan_held;
        plan_held = 0;
        governor.Release(plan_id, freed);
        return freed;
      });
  governor.Charge(parse_id, 600);
  governor.Charge(plan_id, 300);
  EXPECT_TRUE(order.empty());  // 900 <= 1000: no pressure yet

  const int pinned = governor.RegisterConsumer(
      "pinned", MemoryGovernor::kPriorityPinned, nullptr);
  governor.Charge(pinned, 400);  // 1300 > 1000

  // Shedding the parse cache alone (600) already relieves the pressure;
  // the plan cache is untouched.
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], "parse");
  EXPECT_EQ(governor.consumer_bytes(plan_id), 300u);
  EXPECT_LE(governor.charged_bytes(), 1000u);
  EXPECT_GE(governor.stats().pressure_events, 1u);
  EXPECT_GE(governor.stats().evicted_bytes, 600u);
}

TEST(GovernorTest, PinnedOverloadCountsAnOvercommit) {
  MemoryGovernor governor(100);
  const int pinned = governor.RegisterConsumer(
      "pinned", MemoryGovernor::kPriorityPinned, nullptr);
  governor.Charge(pinned, 500);  // nothing can shed
  EXPECT_EQ(governor.charged_bytes(), 500u);  // charge still succeeded
  EXPECT_GE(governor.stats().overcommits, 1u);
}

TEST(GovernorTest, BudgetShrinkTriggersPressure) {
  MemoryGovernor governor(1000);
  std::atomic<int> evictions{0};
  size_t held = 800;
  int id = 0;
  id = governor.RegisterConsumer("c", 0, [&](size_t) {
    ++evictions;
    const size_t freed = held;
    held = 0;
    governor.Release(id, freed);
    return freed;
  });
  governor.Charge(id, 800);
  EXPECT_EQ(evictions.load(), 0);
  governor.set_budget_bytes(500);
  EXPECT_EQ(evictions.load(), 1);
  EXPECT_EQ(governor.charged_bytes(), 0u);
  EXPECT_EQ(governor.budget_bytes(), 500u);
}

// --- governed DocumentStore ----------------------------------------------

std::string SmallDoc(int code) {
  return "<Item><Code>" + std::to_string(code) +
         "</Code><Name>item name with some padding text</Name>"
         "<Section>CD</Section></Item>";
}

TEST(GovernedStoreTest, ExternalPressureShedsTheParseCache) {
  MemoryGovernor governor(size_t{1} << 20);
  storage::DocumentStore store(std::make_shared<xml::NamePool>(),
                               size_t{64} << 20);  // own bound: generous
  store.AttachGovernor(&governor);
  for (int i = 0; i < 10; ++i) {
    auto slot = store.PutSerialized("d" + std::to_string(i), SmallDoc(i));
    ASSERT_TRUE(slot.ok());
    ASSERT_TRUE(store.Get(*slot).ok());
  }
  ASSERT_GT(store.cache_bytes(), 0u);
  EXPECT_EQ(governor.charged_bytes(), store.cache_bytes());

  // A pinned charge takes the whole budget: the parse cache must shed
  // everything it holds.
  const int pinned = governor.RegisterConsumer(
      "pinned", MemoryGovernor::kPriorityPinned, nullptr);
  governor.Charge(pinned, governor.budget_bytes());
  EXPECT_EQ(store.cache_bytes(), 0u);
  EXPECT_GT(store.metrics().cache_evictions, 0u);
  // Conservation: the governor now sees only the pinned charge.
  EXPECT_EQ(governor.charged_bytes(), governor.budget_bytes());
  store.AttachGovernor(nullptr);
}

// --- PlanCache byte bound -------------------------------------------------

TEST(PlanCacheBytesTest, ByteCapacityBoundsTheCache) {
  xdb::DatabaseOptions options;
  options.plan_cache_capacity = 128;
  options.plan_cache_capacity_bytes = 4096;  // a handful of plans
  xdb::Database db(options);
  ASSERT_TRUE(db.CreateCollection("items").ok());
  ASSERT_TRUE(db.StoreSerialized("items", "d0", SmallDoc(0)).ok());
  for (int i = 0; i < 32; ++i) {
    // Distinct texts -> distinct cache entries.
    auto result = db.Execute(
        "count(collection(\"items\")/Item[Code = \"" + std::to_string(i) +
        "\"])");
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_LE(db.plan_cache_bytes(), options.plan_cache_capacity_bytes);
    EXPECT_EQ(result->metrics.plan_cache_bytes, db.plan_cache_bytes());
  }
  EXPECT_GT(db.plan_cache_stats().evictions, 0u);
  EXPECT_GT(db.plan_cache_size(), 0u);
}

// --- Database end-to-end under a budget -----------------------------------

TEST(DatabaseBudgetTest, TinyBudgetChangesNoAnswers) {
  xdb::DatabaseOptions governed_options;
  governed_options.memory_budget_bytes = 4 * KiB;  // absurdly tight
  xdb::Database governed(governed_options);
  xdb::Database plain;
  ASSERT_NE(governed.governor(), nullptr);
  EXPECT_EQ(plain.governor(), nullptr);

  for (xdb::Database* db : {&governed, &plain}) {
    ASSERT_TRUE(db->CreateCollection("items").ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          db->StoreSerialized("items", "d" + std::to_string(i), SmallDoc(i))
              .ok());
    }
  }
  const std::vector<std::string> queries = {
      "count(collection(\"items\")/Item)",
      "for $i in collection(\"items\")/Item where $i/Section = \"CD\" "
      "return $i/Code",
      "collection(\"items\")/Item[Code = \"7\"]/Name",
  };
  for (const std::string& q : queries) {
    auto a = governed.Execute(q);
    auto b = plain.Execute(q);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->serialized, b->serialized) << q;
  }
  // The budget held: pressure fired and the caches were kept near it
  // (pinned/in-flight overshoot is possible, unbounded growth is not).
  EXPECT_GT(governed.governor()->stats().pressure_events, 0u);
  EXPECT_LE(governed.governor()->charged_bytes(),
            governed_options.memory_budget_bytes);
}

}  // namespace
}  // namespace partix::memory
