// Failure injection: PartiX against dead DBMS nodes. Data localization
// has a useful side effect the paper's architecture implies but never
// tests: queries that are pruned away from a dead node's fragment keep
// working.

#include <regex>

#include "common/strings.h"
#include "gen/virtual_store.h"
#include "gtest/gtest.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "workload/schemas.h"

namespace partix::middleware {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  FailureTest()
      : cluster_(4, xdb::DatabaseOptions(), NetworkModel()),
        publisher_(&cluster_, &catalog_),
        service_(&cluster_, &catalog_) {
    gen::ItemsGenOptions options;
    options.doc_count = 40;
    options.seed = 11;
    options.sections = {"CD", "DVD", "BOOK", "TOY"};
    auto items = gen::GenerateItems(options, nullptr);
    EXPECT_TRUE(items.ok());
    frag::FragmentationSchema schema;
    schema.collection = "items";
    for (const std::string& s : options.sections) {
      auto mu = xpath::Conjunction::Parse("/Item/Section = \"" + s + "\"");
      EXPECT_TRUE(mu.ok());
      schema.fragments.emplace_back(frag::HorizontalDef{"f_" + s, *mu});
    }
    EXPECT_TRUE(publisher_.PublishFragmented(*items, schema).ok());
    // Fragments placed round-robin: f_CD -> node 0, f_DVD -> node 1, ...
  }

  DistributionCatalog catalog_;
  ClusterSim cluster_;
  DataPublisher publisher_;
  QueryService service_;
};

TEST_F(FailureTest, NodesStartAlive) {
  for (size_t i = 0; i < cluster_.node_count(); ++i) {
    EXPECT_FALSE(cluster_.IsNodeDown(i));
  }
}

TEST_F(FailureTest, QueryTouchingDeadNodeFailsCleanly) {
  cluster_.SetNodeDown(1, true);  // f_DVD
  auto result = service_.Execute(
      "for $i in collection(\"items\")/Item "
      "where $i/Section = \"DVD\" return $i/Name");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(Contains(result.status().message(), "f_DVD"));
}

TEST_F(FailureTest, LocalizedQueryAvoidsDeadNode) {
  cluster_.SetNodeDown(1, true);  // f_DVD
  // A CD-only query never touches node 1: it still succeeds.
  auto result = service_.Execute(
      "count(collection(\"items\")/Item[Section = \"CD\"])");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->subqueries.size(), 1u);
}

TEST_F(FailureTest, FullScanFailsWhileAnyNeededNodeIsDown) {
  cluster_.SetNodeDown(3, true);
  auto result = service_.Execute("count(collection(\"items\")/Item)");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(FailureTest, EveryDownNodeIsReportedInOneError) {
  // Operators restoring a cluster need the full outage picture at once,
  // not one node per retry.
  cluster_.SetNodeDown(1, true);  // f_DVD
  cluster_.SetNodeDown(3, true);  // f_TOY
  auto result = service_.Execute("count(collection(\"items\")/Item)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  const std::string& message = result.status().message();
  // Every unreachable fragment is named in the canonical
  // `fragment@node<i>` form.
  EXPECT_TRUE(Contains(message, "f_DVD@node1")) << message;
  EXPECT_TRUE(Contains(message, "f_TOY@node3")) << message;
  // Healthy nodes are not in the report.
  EXPECT_FALSE(Contains(message, "f_CD")) << message;
  EXPECT_FALSE(Contains(message, "f_BOOK")) << message;
}

TEST_F(FailureTest, ErrorTokensUseCanonicalFragmentAtNodeFormat) {
  // Both error paths — unreachable fragments and post-dispatch sub-query
  // failures — must name fragments as `fragment@node<i>`, nothing else.
  const std::regex token("f_[A-Z]+@node[0-9]+");

  cluster_.SetNodeDown(1, true);
  auto unreachable = service_.Execute("count(collection(\"items\")/Item)");
  ASSERT_FALSE(unreachable.ok());
  EXPECT_TRUE(std::regex_search(unreachable.status().message(), token))
      << unreachable.status().message();
  // The legacy "node 1 (fragment ...)" spelling is gone.
  EXPECT_FALSE(Contains(unreachable.status().message(), "(fragment"))
      << unreachable.status().message();
  cluster_.SetNodeDown(1, false);

  EXPECT_TRUE(cluster_.database(2).DropCollection("f_BOOK").ok());
  auto failed = service_.Execute("count(collection(\"items\")/Item)");
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(std::regex_search(failed.status().message(), token))
      << failed.status().message();
  EXPECT_TRUE(Contains(failed.status().message(), "f_BOOK@node2"))
      << failed.status().message();
}

TEST_F(FailureTest, DownNodesReportedIdenticallyUnderParallelDispatch) {
  cluster_.SetNodeDown(0, true);  // f_CD
  cluster_.SetNodeDown(2, true);  // f_BOOK
  ExecutionOptions options;
  options.parallelism = 4;
  auto result =
      service_.Execute("count(collection(\"items\")/Item)", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(Contains(result.status().message(), "f_CD"));
  EXPECT_TRUE(Contains(result.status().message(), "f_BOOK"));
}

TEST_F(FailureTest, SubQueryFailuresAreAggregatedAcrossNodes) {
  // Break two nodes *behind* the middleware: their fragments vanish from
  // the engines while the catalog still routes to them. Both failures
  // must surface in a single error, not just the first.
  EXPECT_TRUE(cluster_.database(1).DropCollection("f_DVD").ok());
  EXPECT_TRUE(cluster_.database(3).DropCollection("f_TOY").ok());
  for (size_t parallelism : {size_t{1}, size_t{4}}) {
    ExecutionOptions options;
    options.parallelism = parallelism;
    auto result =
        service_.Execute("count(collection(\"items\")/Item)", options);
    ASSERT_FALSE(result.ok());
    const std::string& message = result.status().message();
    EXPECT_TRUE(Contains(message, "2 of 4 sub-queries failed")) << message;
    EXPECT_TRUE(Contains(message, "f_DVD")) << message;
    EXPECT_TRUE(Contains(message, "f_TOY")) << message;
  }
}

TEST_F(FailureTest, RecoveryRestoresService) {
  cluster_.SetNodeDown(2, true);
  EXPECT_FALSE(service_.Execute("count(collection(\"items\")/Item)").ok());
  cluster_.SetNodeDown(2, false);
  auto result = service_.Execute("count(collection(\"items\")/Item)");
  EXPECT_TRUE(result.ok()) << result.status();
}

TEST_F(FailureTest, ExplainRoutesAroundDownPrimary) {
  // Explain consults liveness but never executes, so a replicated catalog
  // over the same cluster is enough to show failover routing.
  frag::FragmentationSchema schema;
  schema.collection = "items_rf2";
  std::vector<FragmentPlacement> placements;
  const std::vector<std::string> sections = {"CD", "DVD", "BOOK", "TOY"};
  for (size_t i = 0; i < sections.size(); ++i) {
    auto mu =
        xpath::Conjunction::Parse("/Item/Section = \"" + sections[i] + "\"");
    ASSERT_TRUE(mu.ok());
    schema.fragments.emplace_back(
        frag::HorizontalDef{"r_" + sections[i], *mu});
    FragmentPlacement p{"r_" + sections[i], i};
    p.backups.push_back((i + 1) % 4);
    placements.push_back(std::move(p));
  }
  DistributionCatalog replicated;
  ASSERT_TRUE(replicated.Register(schema, placements).ok());
  QueryService service(&cluster_, &replicated);

  auto healthy = service.Explain("count(collection(\"items_rf2\")/Item)");
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_TRUE(Contains(*healthy, "node 1  r_DVD")) << *healthy;
  EXPECT_TRUE(Contains(*healthy, "[replicas: node1,node2]")) << *healthy;
  EXPECT_FALSE(Contains(*healthy, "failover")) << *healthy;

  cluster_.SetNodeDown(1, true);  // r_DVD primary
  auto routed = service.Explain("count(collection(\"items_rf2\")/Item)");
  ASSERT_TRUE(routed.ok()) << routed.status();
  // The DVD sub-query now shows its backup as the serving node.
  EXPECT_TRUE(Contains(*routed, "node 2  r_DVD")) << *routed;
  EXPECT_TRUE(Contains(*routed, "[primary node1 down -> failover]"))
      << *routed;
}

TEST_F(FailureTest, OutOfRangeIndexIsHarmless) {
  cluster_.SetNodeDown(99, true);  // no-op
  EXPECT_FALSE(cluster_.IsNodeDown(99));
  EXPECT_TRUE(service_.Execute("count(collection(\"items\")/Item)").ok());
}

}  // namespace
}  // namespace partix::middleware
