// Failure injection: PartiX against dead DBMS nodes. Data localization
// has a useful side effect the paper's architecture implies but never
// tests: queries that are pruned away from a dead node's fragment keep
// working.

#include "common/strings.h"
#include "gen/virtual_store.h"
#include "gtest/gtest.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "workload/schemas.h"

namespace partix::middleware {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  FailureTest()
      : cluster_(4, xdb::DatabaseOptions(), NetworkModel()),
        publisher_(&cluster_, &catalog_),
        service_(&cluster_, &catalog_) {
    gen::ItemsGenOptions options;
    options.doc_count = 40;
    options.seed = 11;
    options.sections = {"CD", "DVD", "BOOK", "TOY"};
    auto items = gen::GenerateItems(options, nullptr);
    EXPECT_TRUE(items.ok());
    frag::FragmentationSchema schema;
    schema.collection = "items";
    for (const std::string& s : options.sections) {
      auto mu = xpath::Conjunction::Parse("/Item/Section = \"" + s + "\"");
      EXPECT_TRUE(mu.ok());
      schema.fragments.emplace_back(frag::HorizontalDef{"f_" + s, *mu});
    }
    EXPECT_TRUE(publisher_.PublishFragmented(*items, schema).ok());
    // Fragments placed round-robin: f_CD -> node 0, f_DVD -> node 1, ...
  }

  DistributionCatalog catalog_;
  ClusterSim cluster_;
  DataPublisher publisher_;
  QueryService service_;
};

TEST_F(FailureTest, NodesStartAlive) {
  for (size_t i = 0; i < cluster_.node_count(); ++i) {
    EXPECT_FALSE(cluster_.IsNodeDown(i));
  }
}

TEST_F(FailureTest, QueryTouchingDeadNodeFailsCleanly) {
  cluster_.SetNodeDown(1, true);  // f_DVD
  auto result = service_.Execute(
      "for $i in collection(\"items\")/Item "
      "where $i/Section = \"DVD\" return $i/Name");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(Contains(result.status().message(), "f_DVD"));
}

TEST_F(FailureTest, LocalizedQueryAvoidsDeadNode) {
  cluster_.SetNodeDown(1, true);  // f_DVD
  // A CD-only query never touches node 1: it still succeeds.
  auto result = service_.Execute(
      "count(collection(\"items\")/Item[Section = \"CD\"])");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->subqueries.size(), 1u);
}

TEST_F(FailureTest, FullScanFailsWhileAnyNeededNodeIsDown) {
  cluster_.SetNodeDown(3, true);
  auto result = service_.Execute("count(collection(\"items\")/Item)");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(FailureTest, EveryDownNodeIsReportedInOneError) {
  // Operators restoring a cluster need the full outage picture at once,
  // not one node per retry.
  cluster_.SetNodeDown(1, true);  // f_DVD
  cluster_.SetNodeDown(3, true);  // f_TOY
  auto result = service_.Execute("count(collection(\"items\")/Item)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  const std::string& message = result.status().message();
  EXPECT_TRUE(Contains(message, "node 1")) << message;
  EXPECT_TRUE(Contains(message, "f_DVD")) << message;
  EXPECT_TRUE(Contains(message, "node 3")) << message;
  EXPECT_TRUE(Contains(message, "f_TOY")) << message;
  // Healthy nodes are not in the report.
  EXPECT_FALSE(Contains(message, "f_CD")) << message;
  EXPECT_FALSE(Contains(message, "f_BOOK")) << message;
}

TEST_F(FailureTest, DownNodesReportedIdenticallyUnderParallelDispatch) {
  cluster_.SetNodeDown(0, true);  // f_CD
  cluster_.SetNodeDown(2, true);  // f_BOOK
  ExecutionOptions options;
  options.parallelism = 4;
  auto result =
      service_.Execute("count(collection(\"items\")/Item)", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(Contains(result.status().message(), "f_CD"));
  EXPECT_TRUE(Contains(result.status().message(), "f_BOOK"));
}

TEST_F(FailureTest, SubQueryFailuresAreAggregatedAcrossNodes) {
  // Break two nodes *behind* the middleware: their fragments vanish from
  // the engines while the catalog still routes to them. Both failures
  // must surface in a single error, not just the first.
  EXPECT_TRUE(cluster_.database(1).DropCollection("f_DVD").ok());
  EXPECT_TRUE(cluster_.database(3).DropCollection("f_TOY").ok());
  for (size_t parallelism : {size_t{1}, size_t{4}}) {
    ExecutionOptions options;
    options.parallelism = parallelism;
    auto result =
        service_.Execute("count(collection(\"items\")/Item)", options);
    ASSERT_FALSE(result.ok());
    const std::string& message = result.status().message();
    EXPECT_TRUE(Contains(message, "2 of 4 sub-queries failed")) << message;
    EXPECT_TRUE(Contains(message, "f_DVD")) << message;
    EXPECT_TRUE(Contains(message, "f_TOY")) << message;
  }
}

TEST_F(FailureTest, RecoveryRestoresService) {
  cluster_.SetNodeDown(2, true);
  EXPECT_FALSE(service_.Execute("count(collection(\"items\")/Item)").ok());
  cluster_.SetNodeDown(2, false);
  auto result = service_.Execute("count(collection(\"items\")/Item)");
  EXPECT_TRUE(result.ok()) << result.status();
}

TEST_F(FailureTest, OutOfRangeIndexIsHarmless) {
  cluster_.SetNodeDown(99, true);  // no-op
  EXPECT_FALSE(cluster_.IsNodeDown(99));
  EXPECT_TRUE(service_.Execute("count(collection(\"items\")/Item)").ok());
}

}  // namespace
}  // namespace partix::middleware
