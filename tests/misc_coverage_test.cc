// Coverage for small public surfaces: document metadata, the query item
// model, union edge cases, subtree serialization, and wire-format
// construction.

#include <memory>

#include "fragmentation/algebra.h"
#include "gtest/gtest.h"
#include "partix/publisher.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/item.h"
#include "xpath/eval.h"

namespace partix {
namespace {

std::shared_ptr<xml::NamePool> Pool() {
  return std::make_shared<xml::NamePool>();
}

TEST(DocumentMetadataTest, SetGetAndDefault) {
  xml::Document doc(Pool(), "d");
  doc.CreateRoot("a");
  EXPECT_TRUE(doc.metadata().empty());
  EXPECT_EQ(doc.GetMetadata("missing"), "");
  doc.SetMetadata("k", "v");
  doc.SetMetadata("k", "v2");  // overwrite
  EXPECT_EQ(doc.GetMetadata("k"), "v2");
  EXPECT_EQ(doc.metadata().size(), 1u);
}

TEST(ItemModelTest, KindsAndAtomization) {
  xquery::Item str(std::string("x"));
  xquery::Item num(2.5);
  xquery::Item truth(true);
  EXPECT_TRUE(str.IsString());
  EXPECT_TRUE(num.IsNumber());
  EXPECT_TRUE(truth.IsBool());
  EXPECT_EQ(str.StringValue(), "x");
  EXPECT_EQ(num.StringValue(), "2.5");
  EXPECT_EQ(truth.StringValue(), "true");
  double out = 0;
  EXPECT_TRUE(truth.TryNumber(&out));
  EXPECT_DOUBLE_EQ(out, 1.0);
  EXPECT_FALSE(str.TryNumber(&out));
  xquery::Item numeric_str(std::string("7.5"));
  EXPECT_TRUE(numeric_str.TryNumber(&out));
  EXPECT_DOUBLE_EQ(out, 7.5);
}

TEST(ItemModelTest, NodeRefEqualityAndDocumentNodeSerialization) {
  auto pool = Pool();
  auto doc = xml::ParseXml(pool, "d", "<a><b>x</b></a>");
  ASSERT_TRUE(doc.ok());
  xquery::NodeRef r1{*doc, (*doc)->root()};
  xquery::NodeRef r2{*doc, (*doc)->root()};
  EXPECT_TRUE(r1 == r2);
  xquery::NodeRef doc_node{*doc, xml::kDocumentNode};
  xquery::Item item(doc_node);
  EXPECT_EQ(item.StringValue(), "x");
  xquery::Sequence seq{item};
  EXPECT_EQ(xquery::SerializeSequence(seq), "<a><b>x</b></a>");
}

TEST(UnionTest, EmptyInputRejected) {
  auto result = frag::UnionCollections({}, "out");
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeSubtreeTest, SerializesMidTreeNodes) {
  auto pool = Pool();
  auto doc = xml::ParseXml(pool, "d",
                           "<a><b q=\"1\"><c>x</c></b><d/></a>");
  ASSERT_TRUE(doc.ok());
  auto path = xpath::Path::Parse("/a/b");
  ASSERT_TRUE(path.ok());
  auto nodes = xpath::EvalPath(**doc, *path);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(xml::SerializeSubtree(**doc, nodes[0]),
            "<b q=\"1\"><c>x</c></b>");
}

TEST(WireFormatTest, AttachesMetadataNotContent) {
  auto pool = Pool();
  auto src = xml::ParseXml(pool, "src", "<Item><Code>1</Code></Item>");
  ASSERT_TRUE(src.ok());
  auto projected =
      frag::ProjectDocument(**src, *xpath::Path::Parse("/Item"), {}, "f");
  ASSERT_TRUE(projected.ok());
  xml::DocumentPtr wire = middleware::ToWireFormat(*projected);
  EXPECT_EQ(wire->GetMetadata("px-src"), "src");
  EXPECT_EQ(wire->GetMetadata("px-root"), "0");
  // Content is untouched: no px attributes.
  EXPECT_EQ(xml::Serialize(*wire), "<Item><Code>1</Code></Item>");
}

TEST(WireFormatTest, PassthroughForPlainDocuments) {
  auto pool = Pool();
  auto doc = xml::ParseXml(pool, "d", "<a/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(middleware::ToWireFormat(*doc).get(), doc->get());
}

TEST(ApproxBytesTest, GrowsWithContent) {
  xml::Document small(Pool(), "s");
  small.CreateRoot("a");
  xml::Document big(Pool(), "b");
  auto root = big.CreateRoot("a");
  for (int i = 0; i < 50; ++i) {
    auto child = big.AppendElement(root, "child");
    big.AppendText(child, "some text content here");
  }
  EXPECT_GT(big.ApproxBytes(), small.ApproxBytes());
}

}  // namespace
}  // namespace partix
