// Executable versions of the paper's own examples: the fragment
// definitions of Figures 2, 3, and 4 are built verbatim, applied to
// collections shaped like Fig. 1, and checked against §3.3's correctness
// rules. Each test cites the figure it reproduces.

#include <memory>

#include "fragmentation/correctness.h"
#include "fragmentation/fragment_def.h"
#include "fragmentation/fragmenter.h"
#include "gtest/gtest.h"
#include "xml/parser.h"
#include "xpath/eval.h"

namespace partix::frag {
namespace {

using xml::Collection;
using xml::RepoKind;

xpath::Path P(const std::string& text) {
  auto result = xpath::Path::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

xpath::Conjunction Mu(const std::string& text) {
  auto result = xpath::Conjunction::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

/// Citems := ⟨Svirtual_store, /Store/Items/Item⟩ (Fig. 1(b), MD) with a
/// small but diverse instance set.
class PaperCitems : public ::testing::Test {
 protected:
  PaperCitems()
      : pool_(std::make_shared<xml::NamePool>()),
        citems_("Citems", xml::VirtualStoreSchema(), "/Store/Items/Item",
                RepoKind::kMultipleDocuments) {
    Add("<Item><Code>1</Code><Name>disc one</Name>"
        "<Description>a good disc</Description><Section>CD</Section>"
        "<Release>2004-01-01</Release></Item>");
    Add("<Item><Code>2</Code><Name>film</Name>"
        "<Description>long film</Description><Section>DVD</Section>"
        "<Release>2004-02-01</Release>"
        "<PictureList><Picture><Name>cover</Name>"
        "<Description>good cover art</Description>"
        "<ModificationDate>2004-02-02</ModificationDate>"
        "<OriginalPath>/o</OriginalPath><ThumbPath>/t</ThumbPath>"
        "</Picture></PictureList></Item>");
    Add("<Item><Code>3</Code><Name>game</Name>"
        "<Description>fun game</Description><Section>GAME</Section>"
        "<Release>2004-03-01</Release></Item>");
  }

  void Add(const std::string& xml) {
    auto doc = xml::ParseXml(pool_, "item" + std::to_string(next_++), xml);
    ASSERT_TRUE(doc.ok()) << doc.status();
    ASSERT_TRUE(citems_.Add(*doc).ok());
  }

  std::shared_ptr<xml::NamePool> pool_;
  Collection citems_;
  int next_ = 0;
};

// ---- Fig. 2(a): F1CD := ⟨Citems, σ /Item/Section="CD"⟩,
//                 F2CD := ⟨Citems, σ /Item/Section≠"CD"⟩ ----

TEST_F(PaperCitems, Fig2aSectionFragmentsAreCorrect) {
  FragmentationSchema schema;
  schema.collection = "Citems";
  schema.fragments.emplace_back(
      HorizontalDef{"F1CD", Mu("/Item/Section = \"CD\"")});
  schema.fragments.emplace_back(
      HorizontalDef{"F2CD", Mu("/Item/Section != \"CD\"")});
  auto report = CheckCorrectness(citems_, schema);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();

  auto fragments = ApplyFragmentation(citems_, schema);
  ASSERT_TRUE(fragments.ok());
  EXPECT_EQ((*fragments)[0].size(), 1u);
  EXPECT_EQ((*fragments)[1].size(), 2u);
}

// ---- Fig. 2(b): F1good := ⟨Citems, σ contains(//Description,"good")⟩,
//                 F2good := complement ----

TEST_F(PaperCitems, Fig2bTextSearchFragmentsAreCorrect) {
  FragmentationSchema schema;
  schema.collection = "Citems";
  schema.fragments.emplace_back(HorizontalDef{
      "F1good", Mu("contains(//Description, \"good\")")});
  schema.fragments.emplace_back(HorizontalDef{
      "F2good", Mu("not(contains(//Description, \"good\"))")});
  auto report = CheckCorrectness(citems_, schema);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();

  auto fragments = ApplyFragmentation(citems_, schema);
  ASSERT_TRUE(fragments.ok());
  // Item 1 ("a good disc") and item 2 (whose *picture* description says
  // "good cover art" — //Description reaches any level, as the paper
  // stresses) land in F1good.
  EXPECT_EQ((*fragments)[0].size(), 2u);
  EXPECT_EQ((*fragments)[1].size(), 1u);
}

// ---- Fig. 2(c): F1with_pictures := ⟨Citems, σ /Item/PictureList⟩,
//                 F2with_pictures := ⟨Citems, σ empty(/Item/PictureList)⟩
// "Observe that F1with_pictures cannot be classified as a vertical nor
// hybrid fragment." ----

TEST_F(PaperCitems, Fig2cExistentialFragmentsAreCorrect) {
  FragmentationSchema schema;
  schema.collection = "Citems";
  schema.fragments.emplace_back(
      HorizontalDef{"F1with_pictures", Mu("/Item/PictureList")});
  schema.fragments.emplace_back(
      HorizontalDef{"F2with_pictures", Mu("empty(/Item/PictureList)")});
  auto report = CheckCorrectness(citems_, schema);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();

  auto fragments = ApplyFragmentation(citems_, schema);
  ASSERT_TRUE(fragments.ok());
  EXPECT_EQ((*fragments)[0].size(), 1u);  // only the DVD has pictures
  EXPECT_EQ((*fragments)[1].size(), 2u);
}

// ---- Fig. 3(a): F1items := ⟨Citems, π /Item, {/Item/PictureList}⟩,
//                 F2items := ⟨Citems, π /Item/PictureList, {}⟩
// "nodes that satisfy /Item/PictureList are exactly the ones pruned out
// of the subtrees rooted in /Item in the fragment F1items, thus
// preserving disjointness with respect to F2items." ----

TEST_F(PaperCitems, Fig3aVerticalItemsFragmentsAreCorrect) {
  FragmentationSchema schema;
  schema.collection = "Citems";
  schema.fragments.emplace_back(
      VerticalDef{"F1items", P("/Item"), {P("/Item/PictureList")}});
  schema.fragments.emplace_back(
      VerticalDef{"F2items", P("/Item/PictureList"), {}});
  auto report = CheckCorrectness(citems_, schema);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();

  auto fragments = ApplyFragmentation(citems_, schema);
  ASSERT_TRUE(fragments.ok());
  EXPECT_EQ((*fragments)[0].size(), 3u);  // every item has a pruned twin
  EXPECT_EQ((*fragments)[1].size(), 1u);  // only one item has pictures
  // The pruned fragment holds no PictureList anywhere.
  for (const auto& doc : (*fragments)[0].docs()) {
    EXPECT_TRUE(xpath::EvalPath(*doc, P("/Item/PictureList")).empty());
  }
}

/// Cstore := ⟨Svirtual_store, /Store⟩ (Fig. 1(b), SD).
class PaperCstore : public ::testing::Test {
 protected:
  PaperCstore()
      : pool_(std::make_shared<xml::NamePool>()),
        cstore_("Cstore", xml::VirtualStoreSchema(), "/Store",
                RepoKind::kSingleDocument) {
    auto doc = xml::ParseXml(
        pool_, "store",
        "<Store>"
        "<Sections><Section><Code>1</Code><Name>CD</Name></Section>"
        "<Section><Code>2</Code><Name>DVD</Name></Section></Sections>"
        "<Items>"
        "<Item><Code>1</Code><Name>disc</Name><Description>good"
        "</Description><Section>CD</Section><Release>r</Release></Item>"
        "<Item><Code>2</Code><Name>film</Name><Description>fine"
        "</Description><Section>DVD</Section><Release>r</Release></Item>"
        "<Item><Code>3</Code><Name>game</Name><Description>fun"
        "</Description><Section>GAME</Section><Release>r</Release></Item>"
        "</Items>"
        "<Employees><Employee>ann</Employee></Employees>"
        "</Store>");
    EXPECT_TRUE(doc.ok()) << doc.status();
    EXPECT_TRUE(cstore_.Add(*doc).ok());
  }

  std::shared_ptr<xml::NamePool> pool_;
  Collection cstore_;
};

// ---- Fig. 3(b): F1sections := ⟨Cstore, π /Store/Sections, {}⟩,
//                 F2section := ⟨Cstore, π /Store, {/Store/Sections}⟩ ----

TEST_F(PaperCstore, Fig3bVerticalStoreFragmentsAreCorrect) {
  FragmentationSchema schema;
  schema.collection = "Cstore";
  schema.fragments.emplace_back(
      VerticalDef{"F1sections", P("/Store/Sections"), {}});
  schema.fragments.emplace_back(
      VerticalDef{"F2section", P("/Store"), {P("/Store/Sections")}});
  auto report = CheckCorrectness(cstore_, schema);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

// ---- Fig. 4: F1items..F3items := ⟨Cstore, π /Store/Items • σ Section⟩
//              F4items := ⟨Cstore, π /Store, {/Store/Items}⟩
// "SD repositories may not be horizontally fragmented ... the elements in
// an SD repository may be distributed over fragments using a hybrid
// fragmentation." ----

TEST_F(PaperCstore, Fig4HybridStoreFragmentsAreCorrect) {
  FragmentationSchema schema;
  schema.collection = "Cstore";
  schema.fragments.emplace_back(HybridDef{
      "F1items", P("/Store/Items"), {}, Mu("/Item/Section = \"CD\"")});
  schema.fragments.emplace_back(HybridDef{
      "F2items", P("/Store/Items"), {}, Mu("/Item/Section = \"DVD\"")});
  schema.fragments.emplace_back(
      HybridDef{"F3items", P("/Store/Items"), {},
                Mu("/Item/Section != \"CD\" and "
                   "/Item/Section != \"DVD\"")});
  schema.fragments.emplace_back(HybridDef{
      "F4items", P("/Store"), {P("/Store/Items")}, Mu("true")});
  for (HybridMode mode : {HybridMode::kOneDocPerSubtree,
                          HybridMode::kSinglePrunedDoc}) {
    schema.hybrid_mode = mode;
    auto report = CheckCorrectness(cstore_, schema);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->ok()) << report->Summary();
  }
}

TEST_F(PaperCstore, SdRepositoriesMayNotBeHorizontallyFragmented) {
  FragmentationSchema schema;
  schema.collection = "Cstore";
  schema.fragments.emplace_back(HorizontalDef{"F", Mu("true")});
  auto result = ApplyFragmentation(cstore_, schema);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

// ---- §3.2: "the path expression P cannot retrieve nodes that may have
// cardinality greater than one ... except when the element order is
// indicated (e.g. /Item/PictureList/Picture[1])" ----

TEST_F(PaperCitems, CardinalityRestrictionWithPositionalEscape) {
  FragmentationSchema bad;
  bad.collection = "Citems";
  bad.fragments.emplace_back(
      VerticalDef{"F", P("/Item/Characteristics"), {}});
  // Add a doc with two Characteristics to trigger the restriction.
  Add("<Item><Code>9</Code><Name>multi</Name>"
      "<Description>d</Description><Section>CD</Section>"
      "<Release>r</Release><Characteristics>a</Characteristics>"
      "<Characteristics>b</Characteristics></Item>");
  auto result = ApplyFragmentation(citems_, bad);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);

  FragmentationSchema ok;
  ok.collection = "Citems";
  ok.fragments.emplace_back(
      VerticalDef{"F", P("/Item/Characteristics[1]"), {}});
  EXPECT_TRUE(ApplyFragmentation(citems_, ok).ok());
}

}  // namespace
}  // namespace partix::frag
