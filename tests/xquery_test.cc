#include <map>
#include <memory>

#include "gtest/gtest.h"
#include "xml/parser.h"
#include "xquery/ast.h"
#include "xquery/evaluator.h"
#include "xquery/item.h"
#include "xquery/parser.h"

namespace partix::xquery {
namespace {

using xml::DocumentPtr;

/// In-memory resolver over named document lists.
class MapResolver : public CollectionResolver {
 public:
  void Add(const std::string& collection, DocumentPtr doc) {
    collections_[collection].push_back(std::move(doc));
  }
  Result<std::vector<DocumentPtr>> Resolve(
      const std::string& name) override {
    auto it = collections_.find(name);
    if (it == collections_.end()) {
      return Status::NotFound("no collection " + name);
    }
    return it->second;
  }

 private:
  std::map<std::string, std::vector<DocumentPtr>> collections_;
};

class XQueryEvalTest : public ::testing::Test {
 protected:
  XQueryEvalTest() : pool_(std::make_shared<xml::NamePool>()) {
    Add("items",
        "<Item><Code>1</Code><Name>cd one</Name>"
        "<Description>a good disc</Description><Section>CD</Section>"
        "</Item>");
    Add("items",
        "<Item><Code>2</Code><Name>dvd one</Name>"
        "<Description>a fine movie</Description><Section>DVD</Section>"
        "</Item>");
    Add("items",
        "<Item><Code>3</Code><Name>cd two</Name>"
        "<Description>another good disc</Description><Section>CD</Section>"
        "<PictureList><Picture><Name>p</Name>"
        "<Description>pic</Description></Picture></PictureList>"
        "</Item>");
  }

  void Add(const std::string& collection, const std::string& xml) {
    static int counter = 0;
    auto doc = xml::ParseXml(pool_, "doc" + std::to_string(counter++), xml);
    ASSERT_TRUE(doc.ok()) << doc.status();
    resolver_.Add(collection, *doc);
  }

  /// Runs a query, expecting success; returns the serialized result.
  std::string Run(const std::string& query) {
    Result<Sequence> result = EvalQuery(query, &resolver_, pool_);
    EXPECT_TRUE(result.ok()) << query << " -> " << result.status();
    if (!result.ok()) return "<error>";
    return SerializeSequence(*result);
  }

  Status RunError(const std::string& query) {
    Result<Sequence> result = EvalQuery(query, &resolver_, pool_);
    EXPECT_FALSE(result.ok()) << query;
    return result.ok() ? Status::Ok() : result.status();
  }

  std::shared_ptr<xml::NamePool> pool_;
  MapResolver resolver_;
};

TEST_F(XQueryEvalTest, Literals) {
  EXPECT_EQ(Run("42"), "42");
  EXPECT_EQ(Run("\"hello\""), "hello");
  EXPECT_EQ(Run("3.5"), "3.5");
  EXPECT_EQ(Run("-7"), "-7");
}

TEST_F(XQueryEvalTest, Arithmetic) {
  EXPECT_EQ(Run("1 + 2 * 3"), "7");
  EXPECT_EQ(Run("(1 + 2) * 3"), "9");
  EXPECT_EQ(Run("10 div 4"), "2.5");
  EXPECT_EQ(Run("10 mod 4"), "2");
  EXPECT_EQ(Run("1 - 2 - 3"), "-4");
}

TEST_F(XQueryEvalTest, Comparisons) {
  EXPECT_EQ(Run("1 < 2"), "true");
  EXPECT_EQ(Run("\"a\" = \"a\""), "true");
  EXPECT_EQ(Run("1 >= 2"), "false");
  EXPECT_EQ(Run("1 != 2"), "true");
}

TEST_F(XQueryEvalTest, BooleanConnectives) {
  EXPECT_EQ(Run("1 < 2 and 2 < 3"), "true");
  EXPECT_EQ(Run("1 > 2 or 2 < 3"), "true");
  EXPECT_EQ(Run("not(1 > 2)"), "true");
}

TEST_F(XQueryEvalTest, SequencesAndCount) {
  EXPECT_EQ(Run("count((1, 2, 3))"), "3");
  EXPECT_EQ(Run("count(())"), "0");
  EXPECT_EQ(Run("sum((1, 2, 3))"), "6");
  EXPECT_EQ(Run("avg((2, 4))"), "3");
  EXPECT_EQ(Run("min((3, 1, 2))"), "1");
  EXPECT_EQ(Run("max((3, 1, 2))"), "3");
}

TEST_F(XQueryEvalTest, CollectionPathNavigation) {
  EXPECT_EQ(Run("count(collection(\"items\"))"), "3");
  EXPECT_EQ(Run("count(collection(\"items\")/Item)"), "3");
  EXPECT_EQ(Run("count(collection(\"items\")/Item/Code)"), "3");
  EXPECT_EQ(Run("count(collection(\"items\")//Description)"), "4");
  EXPECT_EQ(Run("count(collection(\"items\")/Item/Nope)"), "0");
}

TEST_F(XQueryEvalTest, StepPredicates) {
  EXPECT_EQ(Run("count(collection(\"items\")/Item[Section = \"CD\"])"),
            "2");
  EXPECT_EQ(
      Run("count(collection(\"items\")/Item[contains(Description, "
          "\"good\")])"),
      "2");
  EXPECT_EQ(Run("count(collection(\"items\")/Item[PictureList])"), "1");
  EXPECT_EQ(Run("count(collection(\"items\")/Item[Code > 1])"), "2");
}

TEST_F(XQueryEvalTest, PositionalPredicate) {
  // XQuery applies positional predicates per context node: each document
  // node contributes its own Item[1].
  EXPECT_EQ(Run("collection(\"items\")/Item[1]/Code"),
            "<Code>1</Code>\n<Code>2</Code>\n<Code>3</Code>");
  // Within one document, [n] selects the n-th matching sibling.
  Add("one", "<r><x>a</x><x>b</x><x>c</x></r>");
  EXPECT_EQ(Run("collection(\"one\")/r/x[2]"), "<x>b</x>");
  EXPECT_EQ(Run("count(collection(\"one\")/r/x[9])"), "0");
}

TEST_F(XQueryEvalTest, FlworBasics) {
  EXPECT_EQ(Run("for $i in (1, 2, 3) return $i * 2"), "2\n4\n6");
  EXPECT_EQ(Run("let $x := 5 return $x + 1"), "6");
  EXPECT_EQ(Run("for $i in (1, 2, 3) where $i > 1 return $i"), "2\n3");
}

TEST_F(XQueryEvalTest, FlworOverCollection) {
  EXPECT_EQ(Run("for $i in collection(\"items\")/Item "
                "where $i/Section = \"CD\" return $i/Name"),
            "<Name>cd one</Name>\n<Name>cd two</Name>");
}

TEST_F(XQueryEvalTest, FlworMultipleClauses) {
  EXPECT_EQ(Run("for $i in (1, 2), $j in (10, 20) return $i + $j"),
            "11\n21\n12\n22");
  EXPECT_EQ(Run("for $i in (1, 2) let $d := $i * 10 return $d"), "10\n20");
}

TEST_F(XQueryEvalTest, NestedFlwor) {
  EXPECT_EQ(Run("for $i in (1, 2) return (for $j in (1, 2) "
                "return $i * $j)"),
            "1\n2\n2\n4");
}

TEST_F(XQueryEvalTest, WhereWithContains) {
  EXPECT_EQ(Run("count(for $i in collection(\"items\")/Item "
                "where contains($i/Description, \"good\") return $i)"),
            "2");
}

TEST_F(XQueryEvalTest, ElementConstruction) {
  EXPECT_EQ(Run("<result>{ 1 + 1 }</result>"), "<result>2</result>");
  EXPECT_EQ(Run("<r a=\"x\"><nested/></r>"), "<r a=\"x\"><nested/></r>");
  EXPECT_EQ(Run("for $i in collection(\"items\")/Item[Code = 1] "
                "return <hit>{ $i/Name }</hit>"),
            "<hit><Name>cd one</Name></hit>");
}

TEST_F(XQueryEvalTest, ConstructedTextJoining) {
  // Adjacent atomized items are joined with a space.
  EXPECT_EQ(Run("<r>{ (1, 2) }</r>"), "<r>1 2</r>");
}

TEST_F(XQueryEvalTest, IfThenElse) {
  EXPECT_EQ(Run("if (1 < 2) then \"yes\" else \"no\""), "yes");
  EXPECT_EQ(Run("if (1 > 2) then \"yes\" else \"no\""), "no");
}

TEST_F(XQueryEvalTest, StringFunctions) {
  EXPECT_EQ(Run("contains(\"hello\", \"ell\")"), "true");
  EXPECT_EQ(Run("starts-with(\"hello\", \"he\")"), "true");
  EXPECT_EQ(Run("string-length(\"hello\")"), "5");
  EXPECT_EQ(Run("concat(\"a\", \"b\", \"c\")"), "abc");
  EXPECT_EQ(Run("string(42)"), "42");
  EXPECT_EQ(Run("number(\"3.5\") + 1"), "4.5");
}

TEST_F(XQueryEvalTest, EmptyExistsDistinct) {
  EXPECT_EQ(Run("empty(())"), "true");
  EXPECT_EQ(Run("exists((1))"), "true");
  EXPECT_EQ(Run("count(distinct-values((1, 2, 2, 1)))"), "2");
  EXPECT_EQ(Run("count(distinct-values(collection(\"items\")"
                "/Item/Section))"),
            "2");
}

TEST_F(XQueryEvalTest, NameFunction) {
  EXPECT_EQ(Run("name(collection(\"items\")/Item[1])"), "Item");
}

TEST_F(XQueryEvalTest, GeneralComparisonOverNodeSets) {
  // Existential semantics: any Item code equals 2.
  EXPECT_EQ(Run("collection(\"items\")/Item/Code = 2"), "true");
  EXPECT_EQ(Run("collection(\"items\")/Item/Code = 99"), "false");
}

TEST_F(XQueryEvalTest, Errors) {
  EXPECT_EQ(RunError("$nope").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(RunError("collection(\"missing\")").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(RunError("frobnicate(1)").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(RunError("\"a\" + 1").code(), StatusCode::kInvalidArgument);
}

TEST(XQueryParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("for $i in").ok());
  EXPECT_FALSE(ParseQuery("for $i in (1) where").ok());
  EXPECT_FALSE(ParseQuery("let $x = 1 return $x").ok());  // needs :=
  EXPECT_FALSE(ParseQuery("count(1").ok());
  EXPECT_FALSE(ParseQuery("<a>{1}</b>").ok());
  EXPECT_FALSE(ParseQuery("1 +").ok());
  EXPECT_FALSE(ParseQuery("").ok());
}

TEST(XQueryParserTest, CommentsAreSkipped) {
  auto ast = ParseQuery("(: hi (: nested :) :) 1 (: bye :) + 2");
  ASSERT_TRUE(ast.ok()) << ast.status();
}

TEST(XQueryParserTest, AstPrintingRoundTrips) {
  const char* queries[] = {
      "for $i in collection(\"c\")/Item where $i/Section = \"CD\" "
      "return $i/Name",
      "count(collection(\"c\")/Item[contains(Description, \"good\")])",
      "<r a=\"1\">{ $x }</r>",
      "if (1 < 2) then \"a\" else \"b\"",
      "sum(for $i in (1, 2) return $i * 2)",
  };
  for (const char* q : queries) {
    auto ast = ParseQuery(q);
    ASSERT_TRUE(ast.ok()) << q << ": " << ast.status();
    std::string printed = ExprToString(**ast);
    auto reparsed = ParseQuery(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << ": " << reparsed.status();
    EXPECT_EQ(ExprToString(**reparsed), printed);
  }
}

TEST(XQueryParserTest, CloneProducesEqualTree) {
  auto ast = ParseQuery(
      "for $i in collection(\"c\")/Item[Code > 3] where "
      "contains($i/Description, \"x\") return <r>{ $i/Name }</r>");
  ASSERT_TRUE(ast.ok());
  ExprPtr clone = CloneExpr(**ast);
  EXPECT_EQ(ExprToString(**ast), ExprToString(*clone));
}

TEST(ItemTest, EffectiveBooleanValue) {
  Sequence empty;
  EXPECT_FALSE(*EffectiveBooleanValue(empty));
  EXPECT_TRUE(*EffectiveBooleanValue({Item(true)}));
  EXPECT_FALSE(*EffectiveBooleanValue({Item(0.0)}));
  EXPECT_TRUE(*EffectiveBooleanValue({Item(std::string("x"))}));
  EXPECT_FALSE(*EffectiveBooleanValue({Item(std::string())}));
  EXPECT_FALSE(EffectiveBooleanValue({Item(1.0), Item(2.0)}).ok());
}

}  // namespace
}  // namespace partix::xquery
