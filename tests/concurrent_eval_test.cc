// Concurrency tests for the re-entrant evaluation core and intra-node
// morsel parallelism (docs/intra-node-parallelism.md):
//
//   - xml::NamePool: concurrent Intern/Find/Get hammer — one stable id
//     per name, ids round-trip, no torn growth
//   - morsel identity: every workload query over three fragmentation
//     designs answers byte-identically at morsel parallelism 1 vs 4
//   - stats conservation: merged per-morsel EvalStats equal the
//     single-threaded totals exactly (nodes_visited, index_range_scans,
//     index_range_hits) — no ManualClock, counters only
//   - concurrent Execute + ExecutePrepared on ONE Database, mixed with
//     plan-cache eviction pressure (tiny cache) and memory-governor
//     pressure (tiny budget), all through the shared-lock read path
//   - LocalXdbDriver reader-writer split: concurrent queries while a
//     writer stores documents
//
// Every test name contains "Concurrent" so scripts/check.sh's explicit
// TSan/ASan reruns pick the whole file up by filter.

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "engine/database.h"
#include "gen/virtual_store.h"
#include "gen/xbench.h"
#include "gtest/gtest.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "workload/queries.h"
#include "workload/schemas.h"
#include "xml/name_pool.h"

namespace partix {
namespace {

// --- NamePool ------------------------------------------------------------

TEST(NamePoolConcurrentTest, ConcurrentInternsAgreeOnIds) {
  xml::NamePool pool;
  constexpr size_t kThreads = 8;
  constexpr size_t kNames = 200;
  constexpr size_t kRounds = 50;

  // Every thread interns the same kNames names over and over (plus reads
  // back names other threads may be inserting at that instant), so the
  // reader fast path, the writer re-check, and deque growth all race.
  std::vector<std::vector<xml::NameId>> ids(kThreads,
                                            std::vector<xml::NameId>(kNames));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &ids, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        for (size_t n = 0; n < kNames; ++n) {
          const std::string name = "name-" + std::to_string(n);
          const xml::NameId id = pool.Intern(name);
          if (round == 0) {
            ids[t][n] = id;
          } else {
            // Interning is idempotent even under contention.
            ASSERT_EQ(ids[t][n], id);
          }
          ASSERT_EQ(pool.Get(id), name);
          ASSERT_TRUE(pool.Find(name).has_value());
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // All threads resolved every name to the same id, and exactly kNames
  // names exist (no duplicate slots from racing inserts).
  for (size_t t = 1; t < kThreads; ++t) EXPECT_EQ(ids[t], ids[0]);
  EXPECT_EQ(pool.size(), kNames);
}

// --- morsel identity + stats conservation on one engine ------------------

class MorselDbTest : public ::testing::Test {
 protected:
  MorselDbTest() {
    EXPECT_TRUE(db_.CreateCollection("items").ok());
    for (int i = 0; i < 24; ++i) {
      const std::string section = (i % 3 == 0) ? "CD" : (i % 3 == 1 ? "DVD"
                                                                    : "BOOK");
      EXPECT_TRUE(
          db_.StoreSerialized(
                 "items", "d" + std::to_string(i),
                 "<Item><Code>" + std::to_string(i) + "</Code><Section>" +
                     section + "</Section><Name>item " + std::to_string(i) +
                     "</Name></Item>")
              .ok());
    }
  }

  xdb::Database db_;
  ThreadPool pool_{4};
};

TEST_F(MorselDbTest, ConcurrentMorselStatsConservation) {
  const std::vector<std::string> queries = {
      "for $i in collection(\"items\")/Item return $i/Name",
      "for $i in collection(\"items\")/Item where $i/Section = \"CD\" "
      "return $i/Code",
      "count(collection(\"items\")/Item[Section = \"DVD\"])",
      "for $i in collection(\"items\")/Item "
      "where $i/Code >= 5 and $i/Code < 20 "
      "return <hit>{ $i/Name }</hit>",
  };
  for (const std::string& query : queries) {
    auto sequential = db_.Execute(query);
    ASSERT_TRUE(sequential.ok()) << sequential.status();

    xdb::ExecParams exec;
    exec.morsel_parallelism = 4;
    exec.morsel_pool = &pool_;
    auto morseled = db_.Execute(query, exec);
    ASSERT_TRUE(morseled.ok()) << morseled.status();

    // Byte-identical answers, exactly conserved evaluator counters: the
    // per-morsel EvalStats merge in chunk order must reproduce the
    // single-threaded totals, not approximate them.
    EXPECT_EQ(morseled->serialized, sequential->serialized) << query;
    EXPECT_EQ(morseled->metrics.nodes_visited,
              sequential->metrics.nodes_visited)
        << query;
    EXPECT_EQ(morseled->metrics.index_range_scans,
              sequential->metrics.index_range_scans)
        << query;
    EXPECT_EQ(morseled->metrics.index_range_hits,
              sequential->metrics.index_range_hits)
        << query;
    EXPECT_EQ(morseled->metrics.result_items,
              sequential->metrics.result_items)
        << query;
  }
}

TEST_F(MorselDbTest, ConcurrentMorselsOnSaturatedPoolStillComplete) {
  // Saturate the pool with blockers parked on a latch (truly blocked, so
  // they hold pool threads without burning the CPU the coordinator needs
  // on small hosts), then run a morselized query: the coordinator's
  // help-while-waiting drain must finish the chunks itself rather than
  // deadlocking on pool capacity.
  // shared_ptr-owned: blockers may still be waking inside Wait() (and
  // queued blockers still run at pool shutdown) after this test body
  // returns, so the latch must outlive the lambdas, not the stack frame.
  auto release = std::make_shared<Latch>(1);
  for (size_t i = 0; i < 8; ++i) {
    pool_.Submit([release] { release->Wait(); });
  }
  xdb::ExecParams exec;
  exec.morsel_parallelism = 4;
  exec.morsel_pool = &pool_;
  auto result =
      db_.Execute("for $i in collection(\"items\")/Item return $i/Code",
                  exec);
  release->CountDown();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->metrics.result_items, 24u);
}

// --- concurrent Execute/ExecutePrepared on one Database ------------------

TEST(EngineConcurrentTest, ConcurrentExecuteUnderCacheAndGovernorPressure) {
  // Tiny plan cache (2 entries, so 4 distinct queries continually evict)
  // and a tight memory budget with a small parse cache: concurrent
  // readers constantly charge/release the governor and shed each other's
  // cache entries while racing plan-cache insert/evict. TSan runs this
  // via scripts/check.sh.
  xdb::DatabaseOptions options;
  options.plan_cache_capacity = 2;
  options.cache_capacity_bytes = 4096;
  options.memory_budget_bytes = 64 << 10;
  xdb::Database db(options);
  ASSERT_TRUE(db.CreateCollection("items").ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        db.StoreSerialized(
              "items", "d" + std::to_string(i),
              "<Item><Code>" + std::to_string(i) +
                  "</Code><Section>CD</Section><Name>item " +
                  std::to_string(i) + "</Name></Item>")
            .ok());
  }

  const std::vector<std::string> queries = {
      "count(collection(\"items\")/Item)",
      "for $i in collection(\"items\")/Item return $i/Code",
      "for $i in collection(\"items\")/Item where $i/Code >= 8 "
      "return $i/Name",
      "count(collection(\"items\")/Item[Section = \"CD\"])",
  };

  // Expected answers, computed single-threaded before the storm.
  std::vector<std::string> expected;
  std::vector<xdb::PreparedQueryPtr> plans;
  for (const std::string& query : queries) {
    auto result = db.Execute(query);
    ASSERT_TRUE(result.ok()) << result.status();
    expected.push_back(result->serialized);
    auto prepared = db.Prepare(query);
    ASSERT_TRUE(prepared.ok()) << prepared.status();
    plans.push_back(prepared->plan);
  }

  constexpr size_t kThreads = 8;
  constexpr size_t kIters = 40;
  ThreadPool morsel_pool(4);
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t iter = 0; iter < kIters; ++iter) {
        const size_t q = (t + iter) % queries.size();
        Result<xdb::QueryResult> result = Status::Ok();
        if (t % 3 == 0) {
          result = db.ExecutePrepared(*plans[q]);
        } else if (t % 3 == 1) {
          result = db.Execute(queries[q]);
        } else {
          xdb::ExecParams exec;
          exec.morsel_parallelism = 3;
          exec.morsel_pool = &morsel_pool;
          result = db.Execute(queries[q], exec);
        }
        if (!result.ok()) {
          ++failures;
        } else if (result->serialized != expected[q]) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
}

// --- driver reader-writer split ------------------------------------------

TEST(DriverConcurrentTest, ConcurrentQueriesWithWriterMakeProgress) {
  middleware::LocalXdbDriver driver("node0");
  ASSERT_TRUE(driver.CreateCollection("items", {}).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(driver
                    .StoreSerializedDocument(
                        "items", "d" + std::to_string(i),
                        "<Item><Code>" + std::to_string(i) + "</Code></Item>",
                        {})
                    .ok());
  }

  // Readers count items while a writer keeps appending documents under
  // the exclusive lock. Every read must see a consistent snapshot (a
  // whole number of stored documents, monotonically between 8 and 8+16)
  // and never error. Each reader runs a bounded number of reads (not a
  // free-running loop): std::shared_mutex may prefer readers, so
  // saturating every core with re-acquiring readers could legally
  // starve the writer past the test timeout on small TSan hosts.
  std::atomic<size_t> reader_errors{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 4; ++t) {
    readers.emplace_back([&driver, &reader_errors] {
      for (int iter = 0; iter < 25; ++iter) {
        auto result = driver.Execute("count(collection(\"items\")/Item)");
        if (!result.ok()) {
          ++reader_errors;
          continue;
        }
        const int count = std::stoi(result->serialized);
        if (count < 8 || count > 24) ++reader_errors;
        std::this_thread::yield();
      }
    });
  }
  for (int i = 8; i < 24; ++i) {
    ASSERT_TRUE(driver
                    .StoreSerializedDocument(
                        "items", "d" + std::to_string(i),
                        "<Item><Code>" + std::to_string(i) + "</Code></Item>",
                        {})
                    .ok());
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(reader_errors.load(), 0u);

  auto final_count = driver.Execute("count(collection(\"items\")/Item)");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->serialized, "24");
}

// --- middleware identity across fragmentation designs --------------------

enum class MorselDesign { kHorizontal, kVertical, kHybrid };

class MorselIdentityP : public ::testing::TestWithParam<MorselDesign> {};

TEST_P(MorselIdentityP, ConcurrentMorselsAnswerByteIdentically) {
  xml::Collection data;
  frag::FragmentationSchema schema;
  std::vector<workload::QuerySpec> queries;
  std::vector<std::string> sections = {"CD", "DVD", "BOOK", "TOY"};

  switch (GetParam()) {
    case MorselDesign::kHorizontal: {
      gen::ItemsGenOptions options;
      options.doc_count = 36;
      options.seed = 91;
      options.sections = sections;
      auto items = gen::GenerateItems(options, nullptr);
      ASSERT_TRUE(items.ok());
      data = std::move(*items);
      auto s = workload::SectionHorizontalSchema("items", sections, 3);
      ASSERT_TRUE(s.ok());
      schema = std::move(*s);
      queries = workload::HorizontalQueries("items");
      break;
    }
    case MorselDesign::kVertical: {
      gen::XBenchGenOptions options;
      options.doc_count = 8;
      options.target_doc_bytes = 3000;
      options.seed = 92;
      auto articles = gen::GenerateArticles(options, nullptr);
      ASSERT_TRUE(articles.ok());
      data = std::move(*articles);
      auto s = workload::ArticleVerticalSchema("papers");
      ASSERT_TRUE(s.ok());
      schema = std::move(*s);
      queries = workload::VerticalQueries("papers");
      break;
    }
    case MorselDesign::kHybrid: {
      gen::StoreGenOptions options;
      options.item_count = 36;
      options.seed = 93;
      options.sections = sections;
      options.large_items = false;
      auto store = gen::GenerateStore(options, nullptr);
      ASSERT_TRUE(store.ok());
      data = std::move(*store);
      auto s = workload::StoreHybridSchema(
          "store", sections, 3, frag::HybridMode::kOneDocPerSubtree);
      ASSERT_TRUE(s.ok());
      schema = std::move(*s);
      queries = workload::HybridQueries("store");
      break;
    }
  }

  middleware::DistributionCatalog catalog;
  middleware::ClusterSim cluster(schema.fragments.size(),
                                 xdb::DatabaseOptions(),
                                 middleware::NetworkModel());
  middleware::DataPublisher publisher(&cluster, &catalog);
  ASSERT_TRUE(publisher.PublishFragmented(data, schema).ok());
  middleware::QueryService service(&cluster, &catalog);

  for (const workload::QuerySpec& q : queries) {
    middleware::ExecutionOptions sequential;
    auto base = service.Execute(q.text, sequential);
    ASSERT_TRUE(base.ok()) << q.id << ": " << base.status();

    for (size_t morsels : {size_t{2}, size_t{4}}) {
      middleware::ExecutionOptions parallel;
      parallel.parallelism = 0;  // cross-node fan-out too
      parallel.intra_node_parallelism = morsels;
      auto result = service.Execute(q.text, parallel);
      ASSERT_TRUE(result.ok()) << q.id << ": " << result.status();
      EXPECT_EQ(result->serialized, base->serialized)
          << q.id << " at morsels=" << morsels;
      EXPECT_EQ(result->result_items, base->result_items) << q.id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Designs, MorselIdentityP,
    ::testing::Values(MorselDesign::kHorizontal, MorselDesign::kVertical,
                      MorselDesign::kHybrid),
    [](const ::testing::TestParamInfo<MorselDesign>& info) {
      switch (info.param) {
        case MorselDesign::kHorizontal:
          return "Horizontal";
        case MorselDesign::kVertical:
          return "Vertical";
        case MorselDesign::kHybrid:
          return "Hybrid";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace partix
