#include "partix/deployment_io.h"

#include <filesystem>

#include "fragmentation/schema_io.h"
#include "gen/virtual_store.h"
#include "gtest/gtest.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "workload/schemas.h"

namespace partix::middleware {
namespace {

namespace fs = std::filesystem;

TEST(SchemaIoTest, HorizontalRoundTrip) {
  auto schema = workload::SectionHorizontalSchema(
      "items", {"CD", "DVD", "BOOK", "TOY"}, 3);
  ASSERT_TRUE(schema.ok());
  std::string text = frag::SerializeFragmentationSchema(*schema);
  auto parsed = frag::ParseFragmentationSchema(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(frag::SerializeFragmentationSchema(*parsed), text);
  EXPECT_EQ(parsed->collection, "items");
  EXPECT_EQ(parsed->fragments.size(), 3u);
}

TEST(SchemaIoTest, VerticalAndHybridRoundTrip) {
  auto vertical = workload::ArticleVerticalSchema("papers");
  ASSERT_TRUE(vertical.ok());
  std::string vtext = frag::SerializeFragmentationSchema(*vertical);
  auto vparsed = frag::ParseFragmentationSchema(vtext);
  ASSERT_TRUE(vparsed.ok()) << vparsed.status();
  EXPECT_EQ(frag::SerializeFragmentationSchema(*vparsed), vtext);

  for (frag::HybridMode mode : {frag::HybridMode::kOneDocPerSubtree,
                                frag::HybridMode::kSinglePrunedDoc}) {
    auto hybrid = workload::StoreHybridSchema(
        "store", {"CD", "DVD", "BOOK"}, 2, mode);
    ASSERT_TRUE(hybrid.ok());
    std::string htext = frag::SerializeFragmentationSchema(*hybrid);
    auto hparsed = frag::ParseFragmentationSchema(htext);
    ASSERT_TRUE(hparsed.ok()) << hparsed.status();
    EXPECT_EQ(frag::SerializeFragmentationSchema(*hparsed), htext);
    EXPECT_EQ(hparsed->hybrid_mode, mode);
  }
}

TEST(SchemaIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(frag::ParseFragmentationSchema("bogus\tline\n").ok());
  EXPECT_FALSE(frag::ParseFragmentationSchema(
                   "collection\tc\nhorizontal\tf\n")
                   .ok());  // missing predicate field
  EXPECT_FALSE(
      frag::ParseFragmentationSchema("collection\tc\n").ok());  // empty
}

class DeploymentIoTest : public ::testing::Test {
 protected:
  DeploymentIoTest() {
    dir_ = fs::temp_directory_path() /
           ("partix_deploy_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  ~DeploymentIoTest() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(DeploymentIoTest, SaveAndRestoreAnsweringIdentically) {
  gen::ItemsGenOptions options;
  options.doc_count = 40;
  options.seed = 77;
  auto items = gen::GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  auto schema =
      workload::SectionHorizontalSchema("items", options.sections, 4);
  ASSERT_TRUE(schema.ok());

  DistributionCatalog catalog;
  ClusterSim cluster(4, xdb::DatabaseOptions(), NetworkModel());
  DataPublisher publisher(&cluster, &catalog);
  ASSERT_TRUE(publisher.PublishFragmented(*items, *schema).ok());

  const std::string query =
      "for $i in collection(\"items\")/Item "
      "where $i/Section = \"CD\" return $i/Name";
  QueryService service(&cluster, &catalog);
  auto before = service.Execute(query);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(SaveDeployment(dir_.string(), catalog, &cluster).ok());

  // "Restart": load into fresh objects and re-run the query.
  auto restored = LoadDeployment(dir_.string(), xdb::DatabaseOptions(),
                                 NetworkModel());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->cluster->node_count(), 4u);
  QueryService restored_service(restored->cluster.get(),
                                restored->catalog.get());
  auto after = restored_service.Execute(query);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->serialized, before->serialized);
  EXPECT_EQ(after->pruned_fragments, before->pruned_fragments);
}

TEST_F(DeploymentIoTest, VerticalDeploymentKeepsReconstructionIds) {
  gen::ItemsGenOptions options;
  options.doc_count = 12;
  options.seed = 78;
  options.large_docs = true;
  auto items = gen::GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());

  frag::FragmentationSchema schema;
  schema.collection = "items";
  auto item_path = xpath::Path::Parse("/Item");
  auto pics_path = xpath::Path::Parse("/Item/PictureList");
  ASSERT_TRUE(item_path.ok() && pics_path.ok());
  schema.fragments.emplace_back(
      frag::VerticalDef{"f_item", *item_path, {*pics_path}});
  schema.fragments.emplace_back(
      frag::VerticalDef{"f_pics", *pics_path, {}});

  DistributionCatalog catalog;
  ClusterSim cluster(2, xdb::DatabaseOptions(), NetworkModel());
  DataPublisher publisher(&cluster, &catalog);
  ASSERT_TRUE(publisher.PublishFragmented(*items, schema).ok());
  ASSERT_TRUE(SaveDeployment(dir_.string(), catalog, &cluster).ok());

  auto restored = LoadDeployment(dir_.string(), xdb::DatabaseOptions(),
                                 NetworkModel());
  ASSERT_TRUE(restored.ok()) << restored.status();
  // A multi-fragment query needs the px-* metadata to have survived.
  QueryService service(restored->cluster.get(), restored->catalog.get());
  auto result = service.Execute(
      "sum(for $i in collection(\"items\")/Item "
      "return count($i/PictureList/Picture))");
  ASSERT_TRUE(result.ok()) << result.status();
  QueryService original_service(&cluster, &catalog);
  auto expected = original_service.Execute(
      "sum(for $i in collection(\"items\")/Item "
      "return count($i/PictureList/Picture))");
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(result->serialized, expected->serialized);
}

TEST_F(DeploymentIoTest, ReplicaSetsSurviveSaveAndLoad) {
  gen::ItemsGenOptions options;
  options.doc_count = 24;
  options.seed = 79;
  auto items = gen::GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  auto schema =
      workload::SectionHorizontalSchema("items", options.sections, 4);
  ASSERT_TRUE(schema.ok());

  DistributionCatalog catalog;
  ClusterSim cluster(4, xdb::DatabaseOptions(), NetworkModel());
  DataPublisher publisher(&cluster, &catalog);
  ASSERT_TRUE(
      publisher.PublishFragmented(*items, *schema, {}, 2).ok());
  ASSERT_TRUE(SaveDeployment(dir_.string(), catalog, &cluster).ok());

  auto restored = LoadDeployment(dir_.string(), xdb::DatabaseOptions(),
                                 NetworkModel());
  ASSERT_TRUE(restored.ok()) << restored.status();
  auto entry = restored->catalog->Get("items");
  ASSERT_TRUE(entry.ok());
  for (const FragmentPlacement& p : (*entry)->placements) {
    ASSERT_EQ(p.backups.size(), 1u) << p.fragment;
    EXPECT_EQ(p.backups[0], (p.node + 1) % 4) << p.fragment;
  }

  // The restored deployment fails over just like the original: kill a
  // primary and the query still answers.
  restored->cluster->SetNodeDown(0, true);
  QueryService service(restored->cluster.get(), restored->catalog.get());
  auto result = service.Execute("count(collection(\"items\")/Item)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->serialized, std::to_string(items->size()));
  EXPECT_GE(result->failovers, 1u);
}

TEST_F(DeploymentIoTest, RefusesToOverwrite) {
  DistributionCatalog catalog;
  ClusterSim cluster(1, xdb::DatabaseOptions(), NetworkModel());
  ASSERT_TRUE(SaveDeployment(dir_.string(), catalog, &cluster).ok());
  EXPECT_EQ(SaveDeployment(dir_.string(), catalog, &cluster).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(DeploymentIoTest, LoadMissingDirectoryFails) {
  auto result = LoadDeployment((dir_ / "nope").string(),
                               xdb::DatabaseOptions(), NetworkModel());
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace partix::middleware
