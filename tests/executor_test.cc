// The executor layer: thread-pool/latch primitives, and the property the
// whole PR hangs on — a distributed plan composes to a byte-identical
// result no matter how many executor workers dispatch its sub-queries.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "gen/virtual_store.h"
#include "gen/xbench.h"
#include "gtest/gtest.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "xpath/path.h"
#include "xpath/predicate.h"

namespace partix {
namespace {

// ---------------------------------------------------------------- Latch

TEST(LatchTest, WaitReturnsOnceCountReachesZero) {
  Latch latch(3);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    latch.Wait();
    released.store(true);
  });
  latch.CountDown();
  latch.CountDown();
  EXPECT_FALSE(released.load());
  latch.CountDown();
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(LatchTest, ZeroCountWaitsDoNotBlock) {
  Latch latch(0);
  latch.Wait();  // must return immediately
  latch.CountDown();  // extra countdowns are harmless
  latch.Wait();
}

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 1000;
  std::atomic<size_t> done{0};
  Latch latch(kTasks);
  for (size_t i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      done.fetch_add(1);
      latch.CountDown();
    });
  }
  latch.Wait();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, ResultIndependentOfCompletionOrder) {
  // Tasks finish in whatever order the scheduler picks; each writes only
  // its own slot, so the gathered state must come out the same every time.
  constexpr size_t kTasks = 64;
  for (int round = 0; round < 4; ++round) {
    ThreadPool pool(8);
    std::vector<int> slots(kTasks, -1);
    Latch latch(kTasks);
    for (size_t i = 0; i < kTasks; ++i) {
      pool.Submit([&, i] {
        // Stagger to shuffle completion order between rounds.
        std::this_thread::sleep_for(
            std::chrono::microseconds((i * 7919) % 97));
        slots[i] = static_cast<int>(i * i);
        latch.CountDown();
      });
    }
    latch.Wait();
    for (size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(slots[i], static_cast<int>(i * i)) << "slot " << i;
    }
  }
}

TEST(ThreadPoolTest, ErrorsPropagateThroughResultSlots) {
  // Library code is exception-free: a failing task records its Status in
  // the slot its closure captured, exactly how the executor gathers
  // per-sub-query failures.
  ThreadPool pool(4);
  constexpr size_t kTasks = 40;
  std::vector<Result<int>> results(kTasks);
  Latch latch(kTasks);
  for (size_t i = 0; i < kTasks; ++i) {
    pool.Submit([&results, &latch, i] {
      if (i % 3 == 0) {
        results[i] = Status::Unavailable("task " + std::to_string(i));
      } else {
        results[i] = static_cast<int>(2 * i);
      }
      latch.CountDown();
    });
  }
  latch.Wait();
  for (size_t i = 0; i < kTasks; ++i) {
    if (i % 3 == 0) {
      ASSERT_FALSE(results[i].ok()) << i;
      EXPECT_EQ(results[i].status().code(), StatusCode::kUnavailable);
      EXPECT_NE(results[i].status().message().find(std::to_string(i)),
                std::string::npos);
    } else {
      ASSERT_TRUE(results[i].ok()) << i;
      EXPECT_EQ(*results[i], static_cast<int>(2 * i));
    }
  }
}

TEST(ThreadPoolTest, ShutdownUnderLoadDrainsEveryQueuedTask) {
  constexpr size_t kTasks = 500;
  std::atomic<size_t> done{0};
  {
    ThreadPool pool(3);
    for (size_t i = 0; i < kTasks; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
        done.fetch_add(1);
      });
    }
    pool.Shutdown();  // must finish all queued work, then join
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsDropped) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<bool> ran{false};
  pool.Submit([&] { ran.store(true); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> stage{0};
  Latch latch(1);
  pool.Submit([&] {
    stage.store(1);
    pool.Submit([&] {
      stage.store(2);
      latch.CountDown();
    });
  });
  latch.Wait();
  EXPECT_EQ(stage.load(), 2);
}

// ------------------------------------------- QueryService × parallelism

/// Horizontal deployment: 4 section fragments on 4 nodes (union and sum
/// compositions).
class ParallelHorizontalTest : public ::testing::Test {
 protected:
  ParallelHorizontalTest()
      : cluster_(4, xdb::DatabaseOptions(), middleware::NetworkModel()),
        publisher_(&cluster_, &catalog_),
        service_(&cluster_, &catalog_) {
    gen::ItemsGenOptions options;
    options.doc_count = 60;
    options.seed = 23;
    options.sections = {"CD", "DVD", "BOOK", "TOY"};
    auto items = gen::GenerateItems(options, nullptr);
    EXPECT_TRUE(items.ok()) << items.status();
    frag::FragmentationSchema schema;
    schema.collection = "items";
    for (const std::string& s : options.sections) {
      auto mu = xpath::Conjunction::Parse("/Item/Section = \"" + s + "\"");
      EXPECT_TRUE(mu.ok()) << mu.status();
      schema.fragments.emplace_back(frag::HorizontalDef{"f_" + s, *mu});
    }
    EXPECT_TRUE(publisher_.PublishFragmented(*items, schema).ok());
  }

  middleware::DistributionCatalog catalog_;
  middleware::ClusterSim cluster_;
  middleware::DataPublisher publisher_;
  middleware::QueryService service_;
};

TEST_F(ParallelHorizontalTest, UnionAndSumAreIdenticalAcrossParallelism) {
  const std::string queries[] = {
      // kUnion composition across all four fragments.
      "for $i in collection(\"items\")/Item return $i/Name",
      // kSumCounts composition.
      "count(collection(\"items\")/Item)",
      // Localized single-sub-query plan (degenerate but must still work).
      "count(collection(\"items\")/Item[Section = \"CD\"])",
  };
  for (const std::string& query : queries) {
    auto sequential = service_.Execute(query);
    ASSERT_TRUE(sequential.ok()) << query << ": " << sequential.status();
    for (size_t parallelism : {size_t{2}, size_t{4}, size_t{0}}) {
      middleware::ExecutionOptions options;
      options.parallelism = parallelism;
      auto parallel = service_.Execute(query, options);
      ASSERT_TRUE(parallel.ok()) << query << ": " << parallel.status();
      EXPECT_EQ(parallel->serialized, sequential->serialized)
          << query << " at parallelism " << parallelism;
      EXPECT_EQ(parallel->result_items, sequential->result_items);
      EXPECT_EQ(parallel->subqueries.size(), sequential->subqueries.size());
    }
  }
}

TEST_F(ParallelHorizontalTest, ReportsMeasuredWallAndParallelism) {
  middleware::ExecutionOptions options;
  options.parallelism = 4;
  auto result =
      service_.Execute("for $i in collection(\"items\")/Item return $i/Name",
                       options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->wall_ms, 0.0);
  EXPECT_EQ(result->parallelism, 4u);
  ASSERT_EQ(result->subqueries.size(), 4u);
  for (const middleware::SubQueryStats& sub : result->subqueries) {
    EXPECT_GT(sub.wall_ms, 0.0);
    // A worker's wall time includes the node execution it wrapped.
    EXPECT_GE(sub.wall_ms, sub.elapsed_ms);
  }
  // The modeled figures must not depend on how the dispatch really ran.
  EXPECT_GT(result->response_ms, 0.0);
  EXPECT_GT(result->slowest_node_ms, 0.0);
}

TEST_F(ParallelHorizontalTest, ParallelismLargerThanPlanIsClamped) {
  middleware::ExecutionOptions options;
  options.parallelism = 64;
  auto result = service_.Execute("count(collection(\"items\")/Item)", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->parallelism, 4u);  // plan has 4 sub-queries
}

/// Vertical deployment: prolog/body/epilog on 3 nodes, exercising the
/// kJoinReconstruct composition path under parallel dispatch.
class ParallelVerticalTest : public ::testing::Test {
 protected:
  ParallelVerticalTest()
      : cluster_(3, xdb::DatabaseOptions(), middleware::NetworkModel()),
        publisher_(&cluster_, &catalog_),
        service_(&cluster_, &catalog_) {
    gen::XBenchGenOptions options;
    options.doc_count = 10;
    options.target_doc_bytes = 4000;
    options.seed = 31;
    auto articles = gen::GenerateArticles(options, nullptr);
    EXPECT_TRUE(articles.ok()) << articles.status();
    frag::FragmentationSchema schema;
    schema.collection = "papers";
    auto path = [](const std::string& text) {
      auto result = xpath::Path::Parse(text);
      EXPECT_TRUE(result.ok()) << result.status();
      return *result;
    };
    schema.fragments.emplace_back(
        frag::VerticalDef{"f_prolog", path("/article/prolog"), {}});
    schema.fragments.emplace_back(
        frag::VerticalDef{"f_body", path("/article/body"), {}});
    schema.fragments.emplace_back(
        frag::VerticalDef{"f_epilog", path("/article/epilog"), {}});
    EXPECT_TRUE(publisher_.PublishFragmented(*articles, schema).ok());
  }

  middleware::DistributionCatalog catalog_;
  middleware::ClusterSim cluster_;
  middleware::DataPublisher publisher_;
  middleware::QueryService service_;
};

TEST_F(ParallelVerticalTest, JoinCompositionIsIdenticalAcrossParallelism) {
  // Spans prolog + epilog: decomposes to fetch sub-queries joined at the
  // middleware (kJoinReconstruct).
  const std::string query =
      "for $a in collection(\"papers\")/article "
      "where $a/prolog/genre = \"survey\" "
      "return count($a/epilog/references/reference)";
  auto sequential = service_.Execute(query);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  EXPECT_GE(sequential->subqueries.size(), 2u);
  for (size_t parallelism : {size_t{2}, size_t{3}, size_t{0}}) {
    middleware::ExecutionOptions options;
    options.parallelism = parallelism;
    auto parallel = service_.Execute(query, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(parallel->serialized, sequential->serialized)
        << "parallelism " << parallelism;
    EXPECT_EQ(parallel->result_items, sequential->result_items);
  }
}

TEST_F(ParallelVerticalTest, RepeatedParallelRunsAreStable) {
  // Re-running the same parallel query must keep producing the same
  // bytes: completion order changes run to run, composition order must
  // not.
  const std::string query =
      "for $a in collection(\"papers\")/article "
      "return <r>{ $a/prolog/title }"
      "<n>{ count($a/epilog/references/reference) }</n></r>";
  middleware::ExecutionOptions options;
  options.parallelism = 3;
  auto first = service_.Execute(query, options);
  ASSERT_TRUE(first.ok()) << first.status();
  for (int run = 0; run < 5; ++run) {
    auto again = service_.Execute(query, options);
    ASSERT_TRUE(again.ok()) << again.status();
    EXPECT_EQ(again->serialized, first->serialized) << "run " << run;
  }
}

}  // namespace
}  // namespace partix
