// Multi-query admission control: concurrency limits, queue backpressure
// verdicts, deadline composition, fairness, drain semantics, and the
// conservation invariants of SchedulerStats — plus concurrent clients
// hammering one QueryService (the TSan target for the shared pool,
// plan caches, and circuit breakers).

#include <atomic>
#include <chrono>
#include <iterator>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/strings.h"
#include "gen/virtual_store.h"
#include "gtest/gtest.h"
#include "memory/governor.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/scheduler.h"

namespace partix::middleware {
namespace {

/// Fast retry policy for tests: real backoff shape, negligible sleeps.
RetryPolicy FastRetry(size_t max_attempts) {
  RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.base_backoff_ms = 0.01;
  retry.max_backoff_ms = 0.1;
  retry.seed = 42;
  return retry;
}

/// Spins (sleeping 1 ms per poll) until `pred` holds; fails the test
/// after `timeout_ms`. For sequencing real threads against the
/// scheduler's observable state (queue depth, active queries).
template <typename Pred>
::testing::AssertionResult WaitUntil(Pred pred, double timeout_ms = 5000.0) {
  Stopwatch watch;
  while (!pred()) {
    if (watch.ElapsedMillis() > timeout_ms) {
      return ::testing::AssertionFailure()
             << "condition not reached within " << timeout_ms << " ms";
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return ::testing::AssertionSuccess();
}

/// Items collection fragmented by Section over a 4-node cluster with a
/// configurable replication factor (replica r of fragment i at node
/// (i + r) mod 4) — the failover_test fixture, reused so fault
/// injection and routing behave identically here.
class SchedulerTestBase : public ::testing::Test {
 protected:
  explicit SchedulerTestBase(size_t replication_factor)
      : cluster_(4, xdb::DatabaseOptions(), NetworkModel()),
        publisher_(&cluster_, &catalog_),
        service_(&cluster_, &catalog_) {
    gen::ItemsGenOptions options;
    options.doc_count = 40;
    options.seed = 11;
    options.sections = {"CD", "DVD", "BOOK", "TOY"};
    auto items = gen::GenerateItems(options, nullptr);
    EXPECT_TRUE(items.ok());
    frag::FragmentationSchema schema;
    schema.collection = "items";
    for (const std::string& s : options.sections) {
      auto mu = xpath::Conjunction::Parse("/Item/Section = \"" + s + "\"");
      EXPECT_TRUE(mu.ok());
      schema.fragments.emplace_back(frag::HorizontalDef{"f_" + s, *mu});
    }
    EXPECT_TRUE(publisher_
                    .PublishFragmented(*items, schema, {},
                                       replication_factor)
                    .ok());
    // f_CD -> node 0, f_DVD -> node 1, f_BOOK -> node 2, f_TOY -> node 3.
  }

  /// Installs a 100%-rate latency spike of `spike_ms` on `node`.
  void StallNode(size_t node, double spike_ms) {
    FaultProfile profile;
    profile.latency_spike_rate = 1.0;
    profile.latency_spike_ms = spike_ms;
    cluster_.SetFaultProfile(node, profile);
  }

  DistributionCatalog catalog_;
  ClusterSim cluster_;
  DataPublisher publisher_;
  QueryService service_;
};

class SchedulerTest : public SchedulerTestBase {
 protected:
  SchedulerTest() : SchedulerTestBase(1) {}
};

class ReplicatedSchedulerTest : public SchedulerTestBase {
 protected:
  ReplicatedSchedulerTest() : SchedulerTestBase(2) {}
};

// Section-pruned single-fragment queries: the decomposer routes each to
// exactly one node, so tests can stall one query's node without
// touching another's.
const char kDvdQuery[] =
    "for $i in collection(\"items\")/Item where $i/Section = \"DVD\" "
    "return $i/Name";
const char kCdQuery[] =
    "for $i in collection(\"items\")/Item where $i/Section = \"CD\" "
    "return $i/Name";
const char kCountQuery[] = "count(collection(\"items\")/Item)";

TEST_F(SchedulerTest, UncontendedExecuteMatchesDirectService) {
  auto direct = service_.Execute(kCountQuery);
  ASSERT_TRUE(direct.ok()) << direct.status();

  Scheduler scheduler(&service_);
  auto via = scheduler.Execute(kCountQuery);
  ASSERT_TRUE(via.ok()) << via.status();
  EXPECT_EQ(via->serialized, direct->serialized);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.drained, 0u);
}

TEST_F(SchedulerTest, PlanPathSharesTheAdmissionPipeline) {
  auto plan = service_.decomposer().Decompose(kCountQuery);
  ASSERT_TRUE(plan.ok()) << plan.status();

  Scheduler scheduler(&service_);
  auto by_query = scheduler.Execute(kCountQuery);
  auto by_plan = scheduler.ExecutePlan(*plan);
  ASSERT_TRUE(by_query.ok()) << by_query.status();
  ASSERT_TRUE(by_plan.ok()) << by_plan.status();
  EXPECT_EQ(by_plan->serialized, by_query->serialized);
  EXPECT_EQ(scheduler.stats().admitted, 2u);
}

TEST_F(SchedulerTest, InstallsAndRemovesTheSharedPool) {
  EXPECT_EQ(cluster_.executor().pool(), nullptr);
  {
    SchedulerOptions options;
    options.pool_threads = 2;
    Scheduler scheduler(&service_, options);
    EXPECT_EQ(cluster_.executor().pool(), &scheduler.pool());
    EXPECT_EQ(scheduler.pool().thread_count(), 2u);

    // An admitted query's intra-query fan-out draws from the same pool.
    ExecutionOptions exec;
    exec.parallelism = 0;
    auto result = scheduler.Execute(kCountQuery, exec);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_GE(scheduler.pool().thread_count(), 2u);
  }
  // Destruction restores the executor's process-wide default.
  EXPECT_EQ(cluster_.executor().pool(), nullptr);
}

TEST_F(SchedulerTest, FullQueueRejectsWithResourceExhausted) {
  StallNode(1, 300.0);  // the holder's query pins the only slot
  SchedulerOptions options;
  options.max_concurrent_queries = 1;
  options.queue_capacity = 0;  // no queue: beyond the slot, bounce
  Scheduler limited(&service_, options);

  std::thread holder([&] {
    auto held = limited.Execute(kDvdQuery);
    EXPECT_TRUE(held.ok()) << held.status();
  });
  ASSERT_TRUE(WaitUntil([&] { return limited.active_queries() == 1; }));

  auto bounced = limited.Execute(kCdQuery);
  ASSERT_FALSE(bounced.ok());
  EXPECT_EQ(bounced.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(Contains(bounced.status().message(), "admission queue full"))
      << bounced.status().message();
  holder.join();

  const SchedulerStats stats = limited.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST_F(SchedulerTest, QueueTimeoutRejectsWithResourceExhausted) {
  StallNode(1, 300.0);
  SchedulerOptions options;
  options.max_concurrent_queries = 1;
  options.queue_capacity = 4;
  options.queue_timeout_ms = 30.0;
  Scheduler scheduler(&service_, options);

  std::thread holder([&] {
    auto held = scheduler.Execute(kDvdQuery);
    EXPECT_TRUE(held.ok()) << held.status();
  });
  ASSERT_TRUE(WaitUntil([&] { return scheduler.active_queries() == 1; }));

  auto timed_out = scheduler.Execute(kCdQuery);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(Contains(timed_out.status().message(), "admission queue"))
      << timed_out.status().message();
  holder.join();

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected + stats.drained);
  EXPECT_EQ(stats.admitted, stats.completed);
}

TEST_F(SchedulerTest, ClientDeadlineExpiresWhileQueued) {
  StallNode(1, 300.0);
  SchedulerOptions options;
  options.max_concurrent_queries = 1;
  options.queue_capacity = 4;  // no queue timeout: the deadline binds
  Scheduler scheduler(&service_, options);

  std::thread holder([&] {
    auto held = scheduler.Execute(kDvdQuery);
    EXPECT_TRUE(held.ok()) << held.status();
  });
  ASSERT_TRUE(WaitUntil([&] { return scheduler.active_queries() == 1; }));

  ClientContext client;
  client.client_id = "impatient";
  client.deadline_ms = 30.0;
  auto expired = scheduler.Execute(kCdQuery, ExecutionOptions(), client);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(Contains(expired.status().message(), "admission queue"))
      << expired.status().message();
  holder.join();
}

TEST_F(SchedulerTest, ClientDeadlineComposesIntoSubQueryDeadline) {
  // No contention: the query is admitted instantly, so (almost) the whole
  // 50 ms client budget flows down as the sub-query deadline — which the
  // 100 ms node stall then blows, producing the executor's canonical
  // deadline failure instead of a 100 ms "success".
  StallNode(1, 100.0);
  Scheduler scheduler(&service_);

  ClientContext client;
  client.deadline_ms = 50.0;
  ExecutionOptions exec;
  exec.retry = FastRetry(3);  // no configured sub-query deadline
  auto result = scheduler.Execute(kDvdQuery, exec, client);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(Contains(result.status().message(), "sub-query deadline"))
      << result.status().message();
  // The slot was released despite the failure.
  EXPECT_EQ(scheduler.active_queries(), 0u);
  EXPECT_EQ(scheduler.stats().completed, 1u);
}

TEST_F(SchedulerTest, DrainBouncesQueuedWaitersAndRefusesNewWork) {
  StallNode(1, 300.0);
  SchedulerOptions options;
  options.max_concurrent_queries = 1;
  options.queue_capacity = 4;
  Scheduler scheduler(&service_, options);

  std::thread holder([&] {
    auto held = scheduler.Execute(kDvdQuery);
    EXPECT_TRUE(held.ok()) << held.status();
  });
  ASSERT_TRUE(WaitUntil([&] { return scheduler.active_queries() == 1; }));

  Status queued_verdict = Status::Ok();
  std::thread queued([&] {
    auto result = scheduler.Execute(kCdQuery);
    queued_verdict = result.ok() ? Status::Ok() : result.status();
  });
  ASSERT_TRUE(WaitUntil([&] { return scheduler.queue_depth() == 1; }));

  scheduler.Drain();  // blocks until the holder finishes
  queued.join();
  holder.join();
  EXPECT_EQ(queued_verdict.code(), StatusCode::kUnavailable);

  auto refused = scheduler.Execute(kCdQuery);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.drained, 2u);  // the queued waiter + the late submission
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected + stats.drained);
}

TEST_F(SchedulerTest, WeightedFairnessOrdersBacklogByClientShare) {
  // One slot, held. Enqueue (in this arrival order) lo1, lo2, then
  // hi1..hi4, where "hi" has 4x the weight of "lo". WFQ start tags:
  //   lo1 = 0.0, lo2 = 1.0, hi1 = 0.0, hi2 = 0.25, hi3 = 0.5, hi4 = 0.75
  // so the admission order must be lo1, hi1, hi2, hi3, hi4, lo2 — plain
  // FIFO would run lo2 second, not last.
  StallNode(1, 500.0);  // holder's node; the queued queries hit node 0
  StallNode(0, 20.0);   // keeps each drained query long enough to order
  SchedulerOptions options;
  options.max_concurrent_queries = 1;
  options.queue_capacity = 8;
  options.fairness = FairnessPolicy::kWeightedFair;
  Scheduler scheduler(&service_, options);

  std::thread holder([&] {
    ClientContext hold;
    hold.client_id = "hold";
    auto held = scheduler.Execute(kDvdQuery, ExecutionOptions(), hold);
    EXPECT_TRUE(held.ok()) << held.status();
  });
  ASSERT_TRUE(WaitUntil([&] { return scheduler.active_queries() == 1; }));

  std::mutex order_mu;
  std::vector<std::string> completion_order;
  std::vector<std::thread> clients;
  const struct {
    const char* label;
    const char* client_id;
    double weight;
  } submissions[] = {
      {"lo1", "lo", 1.0}, {"lo2", "lo", 1.0}, {"hi1", "hi", 4.0},
      {"hi2", "hi", 4.0}, {"hi3", "hi", 4.0}, {"hi4", "hi", 4.0},
  };
  for (size_t i = 0; i < std::size(submissions); ++i) {
    const auto& s = submissions[i];
    clients.emplace_back([&, s] {
      ClientContext client;
      client.client_id = s.client_id;
      client.weight = s.weight;
      auto result = scheduler.Execute(kCdQuery, ExecutionOptions(), client);
      EXPECT_TRUE(result.ok()) << s.label << ": " << result.status();
      std::lock_guard<std::mutex> lock(order_mu);
      completion_order.emplace_back(s.label);
    });
    // Serialize arrivals so the start tags above are the actual tags.
    ASSERT_TRUE(WaitUntil([&] { return scheduler.queue_depth() == i + 1; }));
  }
  holder.join();
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(completion_order,
            (std::vector<std::string>{"lo1", "hi1", "hi2", "hi3", "hi4",
                                      "lo2"}));
  EXPECT_EQ(scheduler.stats().max_queue_depth, 6u);
}

TEST_F(SchedulerTest, OverloadStatsConserveAcrossVerdicts) {
  StallNode(1, 200.0);
  SchedulerOptions options;
  options.max_concurrent_queries = 1;
  options.queue_capacity = 1;
  options.queue_timeout_ms = 20.0;
  Scheduler scheduler(&service_, options);

  std::thread holder([&] {
    auto held = scheduler.Execute(kDvdQuery);
    EXPECT_TRUE(held.ok()) << held.status();
  });
  ASSERT_TRUE(WaitUntil([&] { return scheduler.active_queries() == 1; }));

  // A burst that must overflow: 1 slot busy, 1 queue seat, 4 arrivals.
  std::atomic<int> ok{0}, resource_exhausted{0}, other{0};
  std::vector<std::thread> burst;
  for (int i = 0; i < 4; ++i) {
    burst.emplace_back([&] {
      auto result = scheduler.Execute(kCdQuery);
      if (result.ok()) {
        ++ok;
      } else if (result.status().code() == StatusCode::kResourceExhausted) {
        ++resource_exhausted;
      } else {
        ++other;
      }
    });
  }
  for (std::thread& t : burst) t.join();
  holder.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(resource_exhausted.load(), 1);  // at least the overflow bounced
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected + stats.drained);
  EXPECT_EQ(stats.admitted, stats.completed);
  EXPECT_EQ(stats.rejected, static_cast<uint64_t>(resource_exhausted.load()));
}

TEST_F(ReplicatedSchedulerTest, ConcurrentClientsStayByteIdenticalUnderFaults) {
  // The TSan centerpiece: 8 client threads push the full workload through
  // one scheduler (4 slots) while node 1 rejects 30% of requests, forcing
  // concurrent retries, replica failovers, breaker traffic, and shared
  // plan-cache hits. Every composed result must equal the healthy
  // baseline, byte for byte.
  const char* const workload[] = {kCountQuery, kDvdQuery, kCdQuery};
  std::vector<std::string> baseline;
  for (const char* q : workload) {
    auto result = service_.Execute(q);
    ASSERT_TRUE(result.ok()) << result.status();
    baseline.push_back(result->serialized);
  }

  FaultProfile faults;
  faults.transient_error_rate = 0.3;
  faults.seed = 7;
  cluster_.SetFaultProfile(1, faults);

  SchedulerOptions options;
  options.max_concurrent_queries = 4;
  options.queue_capacity = 64;
  Scheduler scheduler(&service_, options);

  constexpr size_t kClients = 8;
  constexpr size_t kIterations = 6;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ClientContext client;
      client.client_id = "client-" + std::to_string(c);
      ExecutionOptions exec;
      exec.parallelism = 0;  // intra-query fan-out on the shared pool
      exec.retry = FastRetry(6);
      exec.retry.seed = 1000 + c;
      for (size_t iter = 0; iter < kIterations; ++iter) {
        for (size_t q = 0; q < std::size(workload); ++q) {
          auto result = scheduler.Execute(workload[q], exec, client);
          ASSERT_TRUE(result.ok())
              << workload[q] << ": " << result.status();
          if (result->serialized != baseline[q]) ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);

  scheduler.Drain();
  const SchedulerStats stats = scheduler.stats();
  const uint64_t total = kClients * kIterations * std::size(workload);
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.admitted, total);
  EXPECT_EQ(stats.completed, total);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.drained, 0u);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected + stats.drained);
}

TEST_F(ReplicatedSchedulerTest, ConcurrentDirectServiceCallsAreSafe) {
  // The QueryService contract allows concurrent Execute without a
  // scheduler (callers bring their own threads; the executor falls back
  // to the process-wide pool). Exercise it under faults for TSan.
  const char* const workload[] = {kCountQuery, kDvdQuery, kCdQuery};
  std::vector<std::string> baseline;
  for (const char* q : workload) {
    auto result = service_.Execute(q);
    ASSERT_TRUE(result.ok()) << result.status();
    baseline.push_back(result->serialized);
  }
  FaultProfile faults;
  faults.transient_error_rate = 0.2;
  faults.seed = 13;
  cluster_.SetFaultProfile(2, faults);

  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < 6; ++c) {
    threads.emplace_back([&, c] {
      ExecutionOptions exec;
      exec.parallelism = 0;
      exec.retry = FastRetry(6);
      exec.retry.seed = 2000 + c;
      for (size_t iter = 0; iter < 4; ++iter) {
        for (size_t q = 0; q < std::size(workload); ++q) {
          auto result = service_.Execute(workload[q], exec);
          ASSERT_TRUE(result.ok())
              << workload[q] << ": " << result.status();
          if (result->serialized != baseline[q]) ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

// --- pressure-aware admission (docs/memory.md) ---------------------------

TEST_F(SchedulerTest, MemoryAdmissionDefersUntilHeadroomFrees) {
  StallNode(1, 300.0);
  memory::MemoryGovernor governor(size_t{3} << 20);  // 3 MB budget
  SchedulerOptions options;
  options.max_concurrent_queries = 4;  // slots are NOT the constraint
  options.queue_capacity = 4;
  options.governor = &governor;
  options.default_query_footprint_bytes = size_t{2} << 20;  // 2 MB each
  Scheduler scheduler(&service_, options);

  std::thread holder([&] {
    auto held = scheduler.Execute(kDvdQuery);  // stalled on node 1
    EXPECT_TRUE(held.ok()) << held.status();
  });
  ASSERT_TRUE(WaitUntil([&] { return scheduler.active_queries() == 1; }));
  // The holder's 2 MB footprint leaves 1 MB headroom: the next query's
  // 2 MB does not fit even though three execution slots are free.
  EXPECT_EQ(governor.headroom_bytes(), size_t{1} << 20);

  auto deferred = scheduler.Execute(kCdQuery);  // waits, then runs
  ASSERT_TRUE(deferred.ok()) << deferred.status();
  holder.join();

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_EQ(stats.memory_deferred, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(governor.charged_bytes(), 0u);  // all footprints released
}

TEST_F(SchedulerTest, MemoryTimeoutIsAMemoryFlavoredVerdict) {
  StallNode(1, 300.0);
  memory::MemoryGovernor governor(size_t{3} << 20);
  SchedulerOptions options;
  options.max_concurrent_queries = 4;
  options.queue_capacity = 4;
  options.queue_timeout_ms = 30.0;
  options.governor = &governor;
  options.default_query_footprint_bytes = size_t{2} << 20;
  Scheduler scheduler(&service_, options);

  std::thread holder([&] {
    auto held = scheduler.Execute(kDvdQuery);
    EXPECT_TRUE(held.ok()) << held.status();
  });
  ASSERT_TRUE(WaitUntil([&] { return scheduler.active_queries() == 1; }));

  auto timed_out = scheduler.Execute(kCdQuery);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(Contains(timed_out.status().message(), "memory"))
      << timed_out.status().message();
  holder.join();
  EXPECT_EQ(scheduler.stats().memory_deferred, 1u);
}

TEST_F(SchedulerTest, ZeroHeadroomStillAdmitsWhenNothingIsActive) {
  memory::MemoryGovernor governor(size_t{1} << 20);
  const int hog = governor.RegisterConsumer(
      "hog", memory::MemoryGovernor::kPriorityPinned, nullptr);
  governor.Charge(hog, governor.budget_bytes());  // zero headroom
  SchedulerOptions options;
  options.governor = &governor;
  Scheduler scheduler(&service_, options);

  // Forward progress: with no query active, admission ignores headroom —
  // overload means queueing, never deadlock.
  auto result = scheduler.Execute(kCountQuery);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(scheduler.stats().memory_deferred, 0u);
}

TEST_F(SchedulerTest, CatalogFootprintEstimatorUsesPublishedSizes) {
  auto estimator = MakeCatalogFootprintEstimator(&catalog_);
  const size_t estimate = estimator(kCountQuery);
  // The publisher recorded per-fragment serialized bytes; the estimate is
  // their sum times the parse-expansion factor.
  uint64_t published = catalog_.SerializedBytesOf("items");
  ASSERT_GT(published, 0u);
  EXPECT_EQ(estimate, static_cast<size_t>(published * 3.0));
  EXPECT_EQ(estimator("count(collection(\"nope\"))"), 0u);
  EXPECT_EQ(estimator("1 + 1"), 0u);

  // The estimator feeds admission: a scheduler built on it admits with
  // catalog-derived footprints (exercised end-to-end, uncontended).
  memory::MemoryGovernor governor(size_t{64} << 20);
  SchedulerOptions options;
  options.governor = &governor;
  options.footprint_estimator = MakeCatalogFootprintEstimator(&catalog_);
  Scheduler scheduler(&service_, options);
  auto result = scheduler.Execute(kCountQuery);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(governor.charged_bytes(), 0u);
}

}  // namespace
}  // namespace partix::middleware
