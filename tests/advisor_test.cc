#include "fragmentation/advisor.h"

#include "fragmentation/correctness.h"
#include "gen/virtual_store.h"
#include "gtest/gtest.h"
#include "xml/parser.h"

namespace partix::frag {
namespace {

xpath::Predicate Pred(const std::string& text) {
  auto result = xpath::Predicate::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

xml::Collection Items(size_t count, uint64_t seed = 7) {
  gen::ItemsGenOptions options;
  options.doc_count = count;
  options.seed = seed;
  auto items = gen::GenerateItems(options, nullptr);
  EXPECT_TRUE(items.ok());
  return std::move(*items);
}

TEST(AdvisorTest, MintermDesignIsAlwaysCorrect) {
  xml::Collection items = Items(80);
  std::vector<WeightedPredicate> predicates = {
      {Pred("/Item/Section = \"CD\""), 5.0},
      {Pred("contains(/Item/Description, \"good\")"), 3.0},
  };
  auto report = DesignHorizontalByMinterms(items, predicates, {});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_LE(report->schema.fragments.size(), 4u);
  EXPECT_GE(report->schema.fragments.size(), 2u);

  auto correctness = CheckCorrectness(items, report->schema);
  ASSERT_TRUE(correctness.ok());
  EXPECT_TRUE(correctness->ok()) << correctness->Summary();
}

TEST(AdvisorTest, FragmentSizesSumToCollectionSize) {
  xml::Collection items = Items(60);
  std::vector<WeightedPredicate> predicates = {
      {Pred("/Item/Section = \"CD\""), 1.0},
  };
  auto report = DesignHorizontalByMinterms(items, predicates, {});
  ASSERT_TRUE(report.ok());
  size_t total = 0;
  for (size_t s : report->fragment_sizes) total += s;
  EXPECT_EQ(total, items.size());
  EXPECT_GE(report->BalanceFactor(), 1.0);
}

TEST(AdvisorTest, BudgetDropsLowWeightPredicates) {
  xml::Collection items = Items(40);
  std::vector<WeightedPredicate> predicates = {
      {Pred("/Item/Section = \"CD\""), 10.0},
      {Pred("/Item/Code < 10"), 5.0},
      {Pred("contains(/Item/Description, \"good\")"), 1.0},
  };
  AdvisorOptions options;
  options.max_fragments = 4;  // budget for 2 predicates
  auto report = DesignHorizontalByMinterms(items, predicates, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->used_predicates.size(), 2u);
  EXPECT_LE(report->schema.fragments.size(), 4u);
  bool dropped_note = false;
  for (const std::string& note : report->notes) {
    if (note.find("dropped") != std::string::npos) dropped_note = true;
  }
  EXPECT_TRUE(dropped_note);
}

TEST(AdvisorTest, DuplicatePredicatesMergeWeights) {
  xml::Collection items = Items(30);
  std::vector<WeightedPredicate> predicates = {
      {Pred("/Item/Section = \"CD\""), 1.0},
      {Pred("/Item/Section = \"CD\""), 1.0},
      {Pred("/Item/Code < 10"), 1.5},
  };
  AdvisorOptions options;
  options.max_fragments = 2;  // budget for 1 predicate
  auto report = DesignHorizontalByMinterms(items, predicates, options);
  ASSERT_TRUE(report.ok());
  // The duplicated Section predicate (total weight 2.0) must win.
  ASSERT_EQ(report->used_predicates.size(), 1u);
  EXPECT_NE(report->used_predicates[0].find("Section"), std::string::npos);
}

TEST(AdvisorTest, RejectsBadInputs) {
  xml::Collection items = Items(5);
  EXPECT_FALSE(DesignHorizontalByMinterms(items, {}, {}).ok());
  std::vector<WeightedPredicate> predicates = {
      {Pred("/Item/Section = \"CD\""), 1.0}};
  AdvisorOptions tight;
  tight.max_fragments = 1;
  EXPECT_FALSE(DesignHorizontalByMinterms(items, predicates, tight).ok());

  xml::Collection sd("sd", nullptr, "/Store",
                     xml::RepoKind::kSingleDocument);
  auto doc = xml::ParseXml(std::make_shared<xml::NamePool>(), "d",
                           "<Store><Items/></Store>");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(sd.Add(*doc).ok());
  EXPECT_EQ(DesignHorizontalByMinterms(sd, predicates, {}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AdvisorTest, MinesPredicatesFromQueries) {
  xml::Collection items = Items(60);
  std::vector<std::string> workload = {
      "for $i in collection(\"items\")/Item "
      "where $i/Section = \"CD\" return $i/Name",
      "for $i in collection(\"items\")/Item "
      "where $i/Section = \"CD\" return $i/Code",
      "count(collection(\"items\")/Item[contains(Description, "
      "\"good\")])",
  };
  auto report = DesignHorizontalFromQueries(items, workload, {});
  ASSERT_TRUE(report.ok()) << report.status();
  // Section = CD (weight 2) and contains(...) (weight 1) both fit the
  // default budget of 8 fragments (3 bits).
  EXPECT_GE(report->used_predicates.size(), 2u);
  auto correctness = CheckCorrectness(items, report->schema);
  ASSERT_TRUE(correctness.ok());
  EXPECT_TRUE(correctness->ok()) << correctness->Summary();
}

TEST(AdvisorTest, QueriesWithoutPredicatesAreRejected) {
  xml::Collection items = Items(5);
  EXPECT_FALSE(DesignHorizontalFromQueries(
                   items, {"count(collection(\"items\"))"}, {})
                   .ok());
}

}  // namespace
}  // namespace partix::frag
