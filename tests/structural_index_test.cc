// Structural labeling index tests (see docs/structural-index.md):
//
//   - label invariants: (pre, post, level) interval axioms, sub_max
//     contiguity, Dewey prefix ordering, NodeAtPre/VisitSubtree agreement
//   - labels survive mutation correctly: any edit invalidates, resealing
//     reproduces the same label stream (determinism contract behind the
//     STRUCT persistence sidecar)
//   - persistence: STRUCT sidecar round-trips, detects corrupted entries
//   - index-backed evaluation is byte-identical to navigational
//     evaluation across every workload query under every fragmentation
//     design (DatabaseOptions::enable_structural_index on vs off)
//   - label-merge JoinFragments is byte-identical to the value-join
//     baseline (JoinFragmentsValueJoin)
//   - planner: spine level bounds and static step strategies
//   - concurrency: parallel probes of a built StructuralIndex and
//     label-range scans over shared sealed documents — the read surface
//     the index contract declares shareable (exercised under TSan by
//     scripts/check.sh)

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "engine/persistence.h"
#include "engine/planner.h"
#include "fragmentation/algebra.h"
#include "gen/virtual_store.h"
#include "gen/xbench.h"
#include "gtest/gtest.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "storage/indexes.h"
#include "telemetry/metrics.h"
#include "workload/harness.h"
#include "workload/queries.h"
#include "workload/schemas.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/eval.h"
#include "xpath/path.h"
#include "xquery/parser.h"

namespace partix {
namespace {

namespace fs = std::filesystem;

using xml::Document;
using xml::DocumentPtr;
using xml::kNullNode;
using xml::NodeId;
using xml::NodeKind;

xml::DocumentPtr MustParse(const std::shared_ptr<xml::NamePool>& pool,
                           const std::string& name, const std::string& text) {
  auto doc = xml::ParseXml(pool, name, text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return *doc;
}

// --- label invariants ----------------------------------------------------

/// Checks every labeling axiom on one sealed document.
void CheckLabelInvariants(const Document& doc) {
  ASSERT_TRUE(doc.has_labels());
  const uint32_t n_count = doc.node_count();

  // pre is a permutation of [0, node_count) and NodeAtPre inverts it.
  std::vector<bool> seen(n_count, false);
  for (NodeId n = 0; n < n_count; ++n) {
    const xml::NodeLabel& l = doc.label(n);
    ASSERT_LT(l.pre, n_count);
    EXPECT_FALSE(seen[l.pre]);
    seen[l.pre] = true;
    EXPECT_EQ(doc.NodeAtPre(l.pre), n);
    EXPECT_GE(l.sub_max, l.pre);
    EXPECT_LT(l.sub_max, n_count);
  }

  // Root: pre 0, level 1, subtree spans the whole document.
  const xml::NodeLabel& root = doc.label(doc.root());
  EXPECT_EQ(root.pre, 0u);
  EXPECT_EQ(root.level, 1u);
  EXPECT_EQ(root.sub_max, n_count - 1);

  for (NodeId n = 0; n < n_count; ++n) {
    const xml::NodeLabel& l = doc.label(n);
    NodeId parent = doc.parent(n);
    if (parent != kNullNode) {
      const xml::NodeLabel& p = doc.label(parent);
      // Interval containment: child strictly inside the parent.
      EXPECT_LT(p.pre, l.pre);
      EXPECT_LE(l.sub_max, p.sub_max);
      EXPECT_LT(l.post, p.post);
      EXPECT_EQ(l.level, p.level + 1);
      EXPECT_TRUE(doc.IsAncestor(parent, n));
      EXPECT_FALSE(doc.IsAncestor(n, parent));

      // Dewey: the parent's components are a strict prefix.
      uint32_t plen = 0;
      uint32_t clen = 0;
      const uint32_t* pd = doc.dewey(parent, &plen);
      const uint32_t* cd = doc.dewey(n, &clen);
      ASSERT_EQ(clen, plen + 1);
      for (uint32_t i = 0; i < plen; ++i) EXPECT_EQ(cd[i], pd[i]);
    }
    // Dewey length always equals the level.
    uint32_t len = 0;
    doc.dewey(n, &len);
    EXPECT_EQ(len, l.level);
  }

  // Sibling ordinals strictly increase left to right and preorder follows
  // sibling order.
  for (NodeId n = 0; n < n_count; ++n) {
    uint32_t prev_ordinal = 0;
    uint32_t prev_pre = 0;
    bool first = true;
    for (NodeId c = doc.first_child(n); c != kNullNode;
         c = doc.next_sibling(c)) {
      uint32_t len = 0;
      const uint32_t* d = doc.dewey(c, &len);
      ASSERT_GT(len, 0u);
      const uint32_t ordinal = d[len - 1];
      const uint32_t pre = doc.label(c).pre;
      if (!first) {
        EXPECT_GT(ordinal, prev_ordinal);
        EXPECT_GT(pre, prev_pre);
      }
      prev_ordinal = ordinal;
      prev_pre = pre;
      first = false;
    }
  }

  // VisitSubtree from the root delivers exactly preorder rank order.
  uint32_t expected_pre = 0;
  doc.VisitSubtree(doc.root(), [&](NodeId n) {
    EXPECT_EQ(doc.label(n).pre, expected_pre);
    ++expected_pre;
  });
  EXPECT_EQ(expected_pre, n_count);

  // NameOccurrences lists are ascending and complete.
  size_t named_total = 0;
  for (NodeId n = 0; n < n_count; ++n) {
    if (doc.kind(n) == NodeKind::kText) continue;
    const auto* occ = doc.NameOccurrences(doc.name_id(n));
    ASSERT_NE(occ, nullptr);
    EXPECT_TRUE(std::is_sorted(occ->begin(), occ->end()));
    ++named_total;
  }
  size_t listed_total = 0;
  for (NodeId n = 0; n < n_count; ++n) {
    if (doc.kind(n) == NodeKind::kText) continue;
    // Count each name list once by only tallying at its first holder.
    const auto* occ = doc.NameOccurrences(doc.name_id(n));
    if (doc.NodeAtPre((*occ)[0]) == n) listed_total += occ->size();
  }
  EXPECT_EQ(listed_total, named_total);
}

TEST(StructuralLabelTest, ParserSealsLabels) {
  auto pool = std::make_shared<xml::NamePool>();
  auto doc = MustParse(
      pool, "d",
      "<a id=\"1\"><b><c>x</c><c>y</c></b><b hint=\"h\">z</b></a>");
  CheckLabelInvariants(*doc);
}

TEST(StructuralLabelTest, GeneratedDocumentsSatisfyInvariants) {
  gen::ItemsGenOptions options;
  options.doc_count = 5;
  options.seed = 91;
  auto items = gen::GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  for (const DocumentPtr& doc : items->docs()) CheckLabelInvariants(*doc);
}

TEST(StructuralLabelTest, DescendantIntervalMatchesSubtree) {
  auto pool = std::make_shared<xml::NamePool>();
  auto doc = MustParse(pool, "d",
                       "<a><b><c/><c/></b><d><c/></d><b/></a>");
  for (NodeId n = 0; n < doc->node_count(); ++n) {
    const xml::NodeLabel& l = doc->label(n);
    // Every node in (pre, sub_max] is a descendant; none outside is.
    for (NodeId m = 0; m < doc->node_count(); ++m) {
      const uint32_t pre = doc->label(m).pre;
      const bool in_interval = pre > l.pre && pre <= l.sub_max;
      EXPECT_EQ(doc->IsAncestor(n, m), in_interval);
    }
  }
}

TEST(StructuralLabelTest, MutationInvalidatesAndResealReproduces) {
  auto pool = std::make_shared<xml::NamePool>();
  auto doc = xml::ParseXml(pool, "d", "<a><b>x</b></a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE((*doc)->has_labels());
  const uint64_t before = xdb::StructuralLabelChecksum(**doc);

  auto copy = std::make_shared<Document>(pool, "d");
  copy->CopySubtree(**doc, (*doc)->root(), kNullNode);
  EXPECT_FALSE(copy->has_labels());  // mutation leaves labels unsealed
  copy->SealLabels();
  // Identical structure -> identical label stream (the STRUCT contract).
  EXPECT_EQ(xdb::StructuralLabelChecksum(*copy), before);

  copy->AppendElement(copy->root(), "b");
  EXPECT_FALSE(copy->has_labels());  // any edit invalidates
  copy->SealLabels();
  EXPECT_NE(xdb::StructuralLabelChecksum(*copy), before);
}

// --- xpath: index-backed steps vs navigation -----------------------------

TEST(StructuralEvalTest, StrategySelection) {
  auto parse = [](const std::string& text) {
    auto p = xpath::Path::Parse(text);
    EXPECT_TRUE(p.ok()) << p.status();
    return *p;
  };
  // Descendant + named: always a label range.
  EXPECT_EQ(xpath::StaticStepStrategy(parse("//Item").steps()[0]),
            xpath::StepStrategy::kLabelRange);
  // Wildcards and positional predicates stay navigational.
  EXPECT_EQ(xpath::StaticStepStrategy(parse("/*").steps()[0]),
            xpath::StepStrategy::kNavigate);
  EXPECT_EQ(xpath::StaticStepStrategy(parse("/Item[2]").steps()[0]),
            xpath::StepStrategy::kNavigate);
  // Child axis: decided per document at evaluation time.
  EXPECT_EQ(xpath::StaticStepStrategy(parse("/Item").steps()[0]),
            xpath::StepStrategy::kDynamic);
}

TEST(StructuralEvalTest, IndexedAndNavigationalPathsAgree) {
  auto pool = std::make_shared<xml::NamePool>();
  auto doc = MustParse(
      pool, "d",
      "<Store><Items>"
      "<Item><Code>1</Code><Name>a</Name></Item>"
      "<Item><Code>2</Code><Name middle=\"m\">b</Name></Item>"
      "</Items><Name>store</Name></Store>");
  const char* paths[] = {"//Item",       "//Name",      "/Store/Items/Item",
                         "//Item/Code",  "//Items//Name", "/Store//Name",
                         "//Item/@*",    "/Store/Name"};
  for (const char* text : paths) {
    auto p = xpath::Path::Parse(text);
    ASSERT_TRUE(p.ok()) << text;
    xpath::EvalOptions on;
    on.use_structural_index = true;
    xpath::EvalOptions off;
    off.use_structural_index = false;
    const std::vector<xml::NodeId> with_index = xpath::EvalPath(*doc, *p, on);
    const std::vector<xml::NodeId> without = xpath::EvalPath(*doc, *p, off);
    EXPECT_EQ(with_index, without) << text;
  }
}

// --- storage: StructuralIndex --------------------------------------------

TEST(StructuralIndexTest, LevelBoundsPruneDocuments) {
  auto pool = std::make_shared<xml::NamePool>();
  auto shallow = MustParse(pool, "s", "<a><b/></a>");         // b at level 2
  auto deep = MustParse(pool, "t", "<a><x><b/></x></a>");     // b at level 3

  storage::StructuralIndex index;
  index.AddDocument(0, *shallow);
  index.AddDocument(1, *deep);
  EXPECT_EQ(index.distinct_names(), 3u);  // a, b, x

  const auto* postings = index.Lookup("b");
  ASSERT_NE(postings, nullptr);
  EXPECT_EQ(postings->size(), 2u);
  EXPECT_EQ(index.Lookup("zzz"), nullptr);

  // Exact level: only the document where some `b` sits at that level.
  EXPECT_EQ(index.LookupWithLevel("b", 2, /*exact_level=*/true),
            (storage::PostingList{0}));
  EXPECT_EQ(index.LookupWithLevel("b", 3, /*exact_level=*/true),
            (storage::PostingList{1}));
  // Lower bound (descendant spine): level <= max_level.
  EXPECT_EQ(index.LookupWithLevel("b", 2, /*exact_level=*/false),
            (storage::PostingList{0, 1}));
  EXPECT_EQ(index.LookupWithLevel("b", 3, /*exact_level=*/false),
            (storage::PostingList{1}));
  EXPECT_TRUE(index.LookupWithLevel("b", 4, false).empty());
}

// --- planner: spine levels and step strategies ---------------------------

std::map<std::string, xdb::CollectionPlan> Plan(const std::string& query) {
  auto ast = xquery::ParseQuery(query);
  EXPECT_TRUE(ast.ok()) << ast.status();
  return xdb::AnalyzeQuery(**ast);
}

TEST(StructuralPlannerTest, ChildOnlySpineHasExactLevels) {
  auto plans = Plan("collection(\"c\")/Store/Items/Item");
  const xdb::SiteConstraints& site = plans["c"].sites[0];
  ASSERT_EQ(site.spine_levels.size(), 3u);
  EXPECT_EQ(site.spine_levels[0], (xdb::SpineLevel{"Store", 1, true}));
  EXPECT_EQ(site.spine_levels[1], (xdb::SpineLevel{"Items", 2, true}));
  EXPECT_EQ(site.spine_levels[2], (xdb::SpineLevel{"Item", 3, true}));
}

TEST(StructuralPlannerTest, DescendantAxisWeakensToLowerBound) {
  auto plans = Plan("collection(\"c\")//Items/Item");
  const xdb::SiteConstraints& site = plans["c"].sites[0];
  ASSERT_EQ(site.spine_levels.size(), 2u);
  EXPECT_EQ(site.spine_levels[0], (xdb::SpineLevel{"Items", 1, false}));
  EXPECT_EQ(site.spine_levels[1], (xdb::SpineLevel{"Item", 2, false}));
  ASSERT_EQ(site.step_strategies.size(), 2u);
  EXPECT_EQ(site.step_strategies[0], xpath::StepStrategy::kLabelRange);
  EXPECT_EQ(site.step_strategies[1], xpath::StepStrategy::kDynamic);
}

TEST(StructuralPlannerTest, LevelPruningSkipsMismatchedDocuments) {
  xdb::Database db;
  ASSERT_TRUE(db.CreateCollection("c").ok());
  // `Name` at level 2 here; the query wants it at level 3.
  ASSERT_TRUE(db.StoreSerialized("c", "flat", "<Item><Name>x</Name></Item>")
                  .ok());
  ASSERT_TRUE(db.StoreSerialized(
                    "c", "nested",
                    "<Store><Item><Name>y</Name></Item></Store>")
                  .ok());
  auto result = db.Execute("collection(\"c\")/Store/Item/Name");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->serialized, "<Name>y</Name>");
  // Level pruning skipped the structurally incompatible document.
  EXPECT_EQ(result->metrics.docs_in_collections, 2u);
  EXPECT_EQ(result->metrics.docs_considered, 1u);
}

// --- engine: on/off byte-identity across workloads -----------------------

enum class Design { kHorizontal, kVertical, kHybrid };

class IndexOnOffP : public ::testing::TestWithParam<Design> {};

TEST_P(IndexOnOffP, ByteIdenticalAnswers) {
  xml::Collection data;
  frag::FragmentationSchema schema;
  std::vector<workload::QuerySpec> queries;
  std::vector<std::string> sections = {"CD", "DVD", "BOOK", "TOY"};

  switch (GetParam()) {
    case Design::kHorizontal: {
      gen::ItemsGenOptions options;
      options.doc_count = 40;
      options.seed = 92;
      options.sections = sections;
      auto items = gen::GenerateItems(options, nullptr);
      ASSERT_TRUE(items.ok());
      data = std::move(*items);
      auto s = workload::SectionHorizontalSchema("items", sections, 3);
      ASSERT_TRUE(s.ok());
      schema = std::move(*s);
      queries = workload::HorizontalQueries("items");
      break;
    }
    case Design::kVertical: {
      gen::XBenchGenOptions options;
      options.doc_count = 8;
      options.target_doc_bytes = 3000;
      options.seed = 93;
      auto articles = gen::GenerateArticles(options, nullptr);
      ASSERT_TRUE(articles.ok());
      data = std::move(*articles);
      auto s = workload::ArticleVerticalSchema("papers");
      ASSERT_TRUE(s.ok());
      schema = std::move(*s);
      queries = workload::VerticalQueries("papers");
      break;
    }
    case Design::kHybrid: {
      gen::StoreGenOptions options;
      options.item_count = 40;
      options.seed = 94;
      options.sections = sections;
      options.large_items = false;
      auto store = gen::GenerateStore(options, nullptr);
      ASSERT_TRUE(store.ok());
      data = std::move(*store);
      auto s = workload::StoreHybridSchema(
          "store", sections, 3, frag::HybridMode::kOneDocPerSubtree);
      ASSERT_TRUE(s.ok());
      schema = std::move(*s);
      queries = workload::HybridQueries("store");
      break;
    }
  }

  xdb::DatabaseOptions with_index;
  with_index.enable_structural_index = true;
  xdb::DatabaseOptions without_index;
  without_index.enable_structural_index = false;

  auto indexed = workload::Deployment::Fragmented(
      data, schema, with_index, middleware::NetworkModel());
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  auto navigational = workload::Deployment::Fragmented(
      data, schema, without_index, middleware::NetworkModel());
  ASSERT_TRUE(navigational.ok()) << navigational.status();

  for (const workload::QuerySpec& q : queries) {
    auto on = (*indexed)->service().Execute(q.text);
    ASSERT_TRUE(on.ok()) << q.id << ": " << on.status();
    auto off = (*navigational)->service().Execute(q.text);
    ASSERT_TRUE(off.ok()) << q.id << ": " << off.status();
    EXPECT_EQ(on->serialized, off->serialized) << q.id;
    EXPECT_EQ(on->result_items, off->result_items) << q.id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Designs, IndexOnOffP,
    ::testing::Values(Design::kHorizontal, Design::kVertical,
                      Design::kHybrid),
    [](const ::testing::TestParamInfo<Design>& info) {
      switch (info.param) {
        case Design::kHorizontal:
          return "Horizontal";
        case Design::kVertical:
          return "Vertical";
        case Design::kHybrid:
          return "Hybrid";
      }
      return "Unknown";
    });

// --- reconstruction: label merge vs value join ---------------------------

TEST(LabelMergeTest, MatchesValueJoinByteForByte) {
  gen::ItemsGenOptions options;
  options.doc_count = 12;
  options.seed = 95;
  auto items = gen::GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());
  auto pool = items->docs()[0]->pool();

  auto parse = [](const std::string& text) {
    auto p = xpath::Path::Parse(text);
    EXPECT_TRUE(p.ok());
    return *p;
  };
  const std::vector<xpath::Path> cuts = {
      parse("/Item/Code"), parse("/Item/Name"), parse("/Item/Description"),
      parse("/Item/Section"), parse("/Item/Release")};

  for (const DocumentPtr& src : items->docs()) {
    std::vector<DocumentPtr> fragments;
    for (size_t i = 0; i < cuts.size(); ++i) {
      auto fragment = frag::ProjectDocument(
          *src, cuts[i], {}, "f" + std::to_string(i));
      ASSERT_TRUE(fragment.ok()) << fragment.status();
      if (*fragment != nullptr) fragments.push_back(*fragment);
    }
    ASSERT_GE(fragments.size(), 2u);

    auto merged = frag::JoinFragments(fragments, pool);
    ASSERT_TRUE(merged.ok()) << merged.status();
    auto joined = frag::JoinFragmentsValueJoin(fragments, pool);
    ASSERT_TRUE(joined.ok()) << joined.status();
    EXPECT_EQ(xml::Serialize(**merged), xml::Serialize(**joined));
  }
}

TEST(LabelMergeTest, DetectsDisjointnessViolation) {
  auto pool = std::make_shared<xml::NamePool>();
  auto doc = MustParse(pool, "d", "<Item><Code>1</Code></Item>");
  auto p = xpath::Path::Parse("/Item/Code");
  ASSERT_TRUE(p.ok());
  auto f1 = frag::ProjectDocument(*doc, *p, {}, "f1");
  auto f2 = frag::ProjectDocument(*doc, *p, {}, "f2");
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  auto joined = frag::JoinFragments({*f1, *f2}, pool);
  ASSERT_FALSE(joined.ok());
  EXPECT_EQ(joined.status().code(), StatusCode::kFailedPrecondition);
}

// --- persistence: STRUCT sidecar -----------------------------------------

class StructSidecarTest : public ::testing::Test {
 protected:
  StructSidecarTest() {
    dir_ = fs::temp_directory_path() /
           ("partix_struct_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  ~StructSidecarTest() override { fs::remove_all(dir_); }

  void Export() {
    gen::ItemsGenOptions options;
    options.doc_count = 6;
    options.seed = 96;
    auto items = gen::GenerateItems(options, nullptr);
    ASSERT_TRUE(items.ok());
    xdb::Database source;
    ASSERT_TRUE(source.StoreCollection(*items).ok());
    ASSERT_TRUE(
        xdb::ExportCollection(source, "items", dir_.string()).ok());
  }

  fs::path dir_;
};

TEST_F(StructSidecarTest, RoundTripVerifiesLabels) {
  Export();
  ASSERT_TRUE(fs::exists(dir_ / "STRUCT"));

  xdb::Database restored;
  EXPECT_TRUE(xdb::ImportCollection(restored, "items", dir_.string()).ok());
  EXPECT_EQ(*restored.DocumentCount("items"), 6u);
}

TEST_F(StructSidecarTest, CorruptedChecksumFailsImport) {
  Export();
  // Flip the checksum of the first STRUCT entry.
  std::ifstream in(dir_ / "STRUCT");
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  in.close();
  const size_t tab = all.rfind('\t', all.find('\n'));
  ASSERT_NE(tab, std::string::npos);
  all[tab + 1] = all[tab + 1] == '0' ? '1' : '0';
  std::ofstream out(dir_ / "STRUCT");
  out << all;
  out.close();

  xdb::Database restored;
  Status status = xdb::ImportCollection(restored, "items", dir_.string());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("do not match STRUCT"), std::string::npos)
      << status.ToString();
}

TEST_F(StructSidecarTest, MalformedStructLineFailsImport) {
  Export();
  std::ofstream out(dir_ / "STRUCT", std::ios::app);
  out << "zzz.xml\tnot-a-number\t1\tdeadbeef\n";
  out.close();

  xdb::Database restored;
  Status status = xdb::ImportCollection(restored, "items", dir_.string());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("bad STRUCT line"), std::string::npos);
}

TEST_F(StructSidecarTest, MissingStructSkipsVerification) {
  Export();
  fs::remove(dir_ / "STRUCT");
  xdb::Database restored;
  EXPECT_TRUE(xdb::ImportCollection(restored, "items", dir_.string()).ok());
}

// --- telemetry: probe counters -------------------------------------------

TEST(StructuralTelemetryTest, ProbeAndHitCountersAdvance) {
  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::Global();
  registry.set_enabled(true);
  auto* probes =
      registry.GetCounter("partix_structural_index_probes_total");
  auto* hits = registry.GetCounter("partix_structural_index_hits_total");
  const uint64_t probes_before = probes->Value();
  const uint64_t hits_before = hits->Value();

  xdb::Database db;
  ASSERT_TRUE(db.CreateCollection("c").ok());
  ASSERT_TRUE(db.StoreSerialized(
                    "c", "d",
                    "<Store><Item><Name>x</Name></Item></Store>")
                  .ok());
  auto result = db.Execute("collection(\"c\")//Item/Name");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->serialized, "<Name>x</Name>");
  EXPECT_GT(result->metrics.index_range_scans, 0u);
  EXPECT_GT(result->metrics.index_range_hits, 0u);
  EXPECT_GT(probes->Value(), probes_before);
  EXPECT_GT(hits->Value(), hits_before);
}

// --- concurrency: parallel probes (TSan coverage) ------------------------

// The StructuralIndex contract is single-writer during loading, immutable
// and freely shared afterwards (the engine itself stays single-thread-only;
// concurrency arrives via the middleware drivers, which hand out shared
// const documents and index views). This test hammers exactly that read
// surface from multiple threads: index lookups, level-pruned lookups, and
// index-backed label-range path scans over shared sealed documents.
TEST(StructuralIndexConcurrencyTest, ConcurrentIndexProbes) {
  auto pool = std::make_shared<xml::NamePool>();
  std::vector<DocumentPtr> docs;
  storage::StructuralIndex index;
  for (int i = 0; i < 8; ++i) {
    DocumentPtr doc = MustParse(
        pool, "d" + std::to_string(i),
        "<Store><Items><Item><Code>" + std::to_string(i) +
            "</Code><Name>n</Name></Item></Items></Store>");
    index.AddDocument(static_cast<storage::DocSlot>(i), *doc);
    docs.push_back(doc);
  }
  // Intern the query names up front: concurrent evaluation only ever
  // *finds* names, it never interns new ones.
  auto item_parsed = xpath::Path::Parse("//Item");
  auto name_parsed = xpath::Path::Parse("/Store/Items/Item/Name");
  ASSERT_TRUE(item_parsed.ok());
  ASSERT_TRUE(name_parsed.ok());
  const xpath::Path& item_path = *item_parsed;
  const xpath::Path& name_path = *name_parsed;
  xpath::EvalOptions on;
  on.use_structural_index = true;
  ASSERT_EQ(xpath::EvalPath(*docs[0], item_path, on).size(), 1u);

  constexpr int kThreads = 4;
  constexpr int kIters = 50;
  std::vector<std::thread> threads;
  std::vector<int> ok_counts(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        bool ok = true;
        // Index probes: plain lookup and both level-pruned shapes.
        const auto* postings = index.Lookup("Item");
        ok &= postings != nullptr && postings->size() == 8;
        ok &= index.LookupWithLevel("Item", 3, /*exact_level=*/true).size() ==
              8;
        ok &= index.LookupWithLevel("Item", 1, /*exact_level=*/true).empty();
        ok &= index.LookupWithLevel("Name", 2, /*exact_level=*/false).size() ==
              8;
        // Label-range scans over a shared sealed document.
        const Document& doc = *docs[(t + i) % docs.size()];
        ok &= xpath::EvalPath(doc, item_path, on).size() == 1;
        ok &= xpath::EvalPath(doc, name_path, on).size() == 1;
        auto item_name = doc.pool()->Find("Item");
        ok &= item_name.has_value();
        if (item_name.has_value()) {
          const std::vector<uint32_t>* occ = doc.NameOccurrences(*item_name);
          ok &= occ != nullptr && occ->size() == 1;
        }
        if (ok) ++ok_counts[t];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(ok_counts[t], kIters);
}

}  // namespace
}  // namespace partix
