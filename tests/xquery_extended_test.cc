// Extended XQuery semantics coverage: order by, constructor nesting,
// comparison corner cases, mixed-type sequences, and error behaviour.

#include <map>
#include <memory>

#include "gtest/gtest.h"
#include "xml/parser.h"
#include "xquery/evaluator.h"
#include "xquery/item.h"
#include "xquery/parser.h"

namespace partix::xquery {
namespace {

using xml::DocumentPtr;

class Resolver : public CollectionResolver {
 public:
  void Add(const std::string& collection, DocumentPtr doc) {
    collections_[collection].push_back(std::move(doc));
  }
  Result<std::vector<DocumentPtr>> Resolve(
      const std::string& name) override {
    auto it = collections_.find(name);
    if (it == collections_.end()) return Status::NotFound(name);
    return it->second;
  }

 private:
  std::map<std::string, std::vector<DocumentPtr>> collections_;
};

class XQueryExtendedTest : public ::testing::Test {
 protected:
  XQueryExtendedTest() : pool_(std::make_shared<xml::NamePool>()) {
    Add("nums", "<n><v>30</v></n>");
    Add("nums", "<n><v>4</v></n>");
    Add("nums", "<n><v>100</v></n>");
    Add("words", "<w><v>pear</v></w>");
    Add("words", "<w><v>apple</v></w>");
    Add("words", "<w><v>mango</v></w>");
  }

  void Add(const std::string& collection, const std::string& xml) {
    auto doc = xml::ParseXml(pool_, collection + std::to_string(n_++), xml);
    ASSERT_TRUE(doc.ok()) << doc.status();
    resolver_.Add(collection, *doc);
  }

  std::string Run(const std::string& query) {
    auto result = EvalQuery(query, &resolver_, pool_);
    EXPECT_TRUE(result.ok()) << query << " -> " << result.status();
    if (!result.ok()) return "<error>";
    return SerializeSequence(*result);
  }

  std::shared_ptr<xml::NamePool> pool_;
  Resolver resolver_;
  int n_ = 0;
};

TEST_F(XQueryExtendedTest, OrderByNumeric) {
  EXPECT_EQ(Run("for $n in collection(\"nums\")/n "
                "order by $n/v return $n/v"),
            "<v>4</v>\n<v>30</v>\n<v>100</v>");
}

TEST_F(XQueryExtendedTest, OrderByDescending) {
  EXPECT_EQ(Run("for $n in collection(\"nums\")/n "
                "order by $n/v descending return $n/v"),
            "<v>100</v>\n<v>30</v>\n<v>4</v>");
}

TEST_F(XQueryExtendedTest, OrderByString) {
  EXPECT_EQ(Run("for $w in collection(\"words\")/w "
                "order by $w/v ascending return $w/v"),
            "<v>apple</v>\n<v>mango</v>\n<v>pear</v>");
}

TEST_F(XQueryExtendedTest, OrderByWithWhere) {
  EXPECT_EQ(Run("for $n in collection(\"nums\")/n "
                "where $n/v > 5 order by $n/v descending return $n/v"),
            "<v>100</v>\n<v>30</v>");
}

TEST_F(XQueryExtendedTest, OrderByExpression) {
  EXPECT_EQ(Run("for $i in (3, 1, 2) order by $i * -1 return $i"),
            "3\n2\n1");
}

TEST_F(XQueryExtendedTest, OrderByIsStable) {
  // Equal keys keep binding order.
  EXPECT_EQ(Run("for $i in (\"b1\", \"a2\", \"b2\", \"a1\") "
                "order by string-length($i) return $i"),
            "b1\na2\nb2\na1");
}

TEST_F(XQueryExtendedTest, OrderByRoundTripsThroughPrinter) {
  auto ast = ParseQuery(
      "for $n in collection(\"nums\")/n order by $n/v descending "
      "return $n/v");
  ASSERT_TRUE(ast.ok());
  auto reparsed = ParseQuery(ExprToString(**ast));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(ExprToString(**reparsed), ExprToString(**ast));
}

TEST_F(XQueryExtendedTest, NestedConstructors) {
  EXPECT_EQ(Run("<a><b>{ 1 }</b><c d=\"x\">{ \"y\" }</c></a>"),
            "<a><b>1</b><c d=\"x\">y</c></a>");
}

TEST_F(XQueryExtendedTest, ConstructorCopiesNodesDeeply) {
  EXPECT_EQ(Run("<wrap>{ collection(\"nums\")/n[v = 4] }</wrap>"),
            "<wrap><n><v>4</v></n></wrap>");
}

TEST_F(XQueryExtendedTest, ConstructedTreeIsQueryable) {
  EXPECT_EQ(Run("let $x := <a><b>7</b></a> return $x/b"), "<b>7</b>");
  EXPECT_EQ(Run("count(let $x := <a><b/><b/></a> return $x/b)"), "2");
}

TEST_F(XQueryExtendedTest, MixedTypeGeneralComparison) {
  // Node-to-number comparisons atomize and compare numerically.
  EXPECT_EQ(Run("collection(\"nums\")/n/v > 50"), "true");
  EXPECT_EQ(Run("collection(\"nums\")/n/v > 100"), "false");
  // String vs string is lexicographic.
  EXPECT_EQ(Run("\"apple\" < \"pear\""), "true");
}

TEST_F(XQueryExtendedTest, EmptySequenceSemantics) {
  EXPECT_EQ(Run("count(collection(\"nums\")/n/zzz)"), "0");
  // Comparisons against the empty sequence are false.
  EXPECT_EQ(Run("collection(\"nums\")/n/zzz = 1"), "false");
  // Arithmetic with the empty sequence is empty.
  EXPECT_EQ(Run("count(1 + collection(\"nums\")/n/zzz)"), "0");
  EXPECT_EQ(Run("sum(())"), "0");
  EXPECT_EQ(Run("count(avg(()))"), "0");
}

TEST_F(XQueryExtendedTest, WhereOverLetBinding) {
  EXPECT_EQ(Run("for $n in collection(\"nums\")/n "
                "let $v := $n/v where $v >= 30 order by $v return $v"),
            "<v>30</v>\n<v>100</v>");
}

TEST_F(XQueryExtendedTest, IfWithoutParensFails) {
  EXPECT_FALSE(ParseQuery("if 1 then 2 else 3").ok());
}

TEST_F(XQueryExtendedTest, DeeplyNestedExpressions) {
  EXPECT_EQ(Run("((((1 + 2)))) * (2 + (3 - 1))"), "12");
  EXPECT_EQ(Run("if (if (1 < 2) then 1 > 0 else 0 > 1) then \"a\" "
                "else \"b\""),
            "a");
}

TEST_F(XQueryExtendedTest, AttributeAccess) {
  Add("attrs", "<r id=\"7\" kind=\"x\"><c id=\"8\"/></r>");
  EXPECT_EQ(Run("collection(\"attrs\")/r/@id"), "7");
  EXPECT_EQ(Run("count(collection(\"attrs\")/r/@*)"), "2");
  EXPECT_EQ(Run("collection(\"attrs\")/r[@kind = \"x\"]/c/@id"), "8");
  EXPECT_EQ(Run("count(collection(\"attrs\")//@id)"), "2");
}

TEST_F(XQueryExtendedTest, DescendantFromDocumentNode) {
  EXPECT_EQ(Run("count(collection(\"nums\")//v)"), "3");
  // Descendant step can also match the root elements themselves.
  EXPECT_EQ(Run("count(collection(\"nums\")//n)"), "3");
}

TEST_F(XQueryExtendedTest, StringFunctionsOnNodes) {
  EXPECT_EQ(Run("string(collection(\"words\")/w[v = \"apple\"]/v)"),
            "apple");
  EXPECT_EQ(Run("concat(\"[\", collection(\"nums\")/n[v = 4]/v, \"]\")"),
            "[4]");
}

TEST_F(XQueryExtendedTest, ArithmeticEdgeCases) {
  EXPECT_EQ(Run("7 mod 2"), "1");
  EXPECT_EQ(Run("-3 + 5"), "2");
  EXPECT_EQ(Run("2 * -3"), "-6");
  EXPECT_EQ(Run("1 div 2"), "0.5");
}

TEST_F(XQueryExtendedTest, CommaSequencesFlatten) {
  EXPECT_EQ(Run("count(((1, 2), (3, (4, 5))))"), "5");
}

TEST_F(XQueryExtendedTest, PositionAndLastInPredicates) {
  Add("seq", "<r><x>a</x><x>b</x><x>c</x><x>d</x></r>");
  EXPECT_EQ(Run("collection(\"seq\")/r/x[position() = 2]"), "<x>b</x>");
  EXPECT_EQ(Run("collection(\"seq\")/r/x[position() >= 3]"),
            "<x>c</x>\n<x>d</x>");
  EXPECT_EQ(Run("collection(\"seq\")/r/x[last()]"), "<x>d</x>");
  EXPECT_EQ(Run("collection(\"seq\")/r/x[position() = last() - 1]"),
            "<x>c</x>");
  // Outside a predicate, position() is an error.
  auto bad = EvalQuery("position()", &resolver_, pool_);
  EXPECT_FALSE(bad.ok());
}

TEST_F(XQueryExtendedTest, SubstringFamily) {
  EXPECT_EQ(Run("substring(\"hello world\", 7)"), "world");
  EXPECT_EQ(Run("substring(\"hello\", 2, 3)"), "ell");
  EXPECT_EQ(Run("substring(\"hello\", 0, 2)"), "h");  // 1-based clamping
  EXPECT_EQ(Run("substring(\"hi\", 9)"), "");
  EXPECT_EQ(Run("string-join((\"a\", \"b\", \"c\"), \"-\")"), "a-b-c");
  EXPECT_EQ(Run("string-join((), \"-\")"), "");
  EXPECT_EQ(Run("normalize-space(\"  a   b \")"), "a b");
  EXPECT_EQ(Run("upper-case(\"MiXeD\")"), "MIXED");
  EXPECT_EQ(Run("lower-case(\"MiXeD\")"), "mixed");
}

TEST_F(XQueryExtendedTest, ParserDepthGuard) {
  std::string deep;
  std::string close;
  for (int i = 0; i < 2000; ++i) {
    deep += "<a>";
    close += "</a>";
  }
  auto result = xml::ParseXml(pool_, "deep", deep + close);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  // A reasonable depth still parses.
  std::string ok_doc;
  std::string ok_close;
  for (int i = 0; i < 100; ++i) {
    ok_doc += "<a>";
    ok_close += "</a>";
  }
  EXPECT_TRUE(xml::ParseXml(pool_, "ok", ok_doc + ok_close).ok());
}

TEST_F(XQueryExtendedTest, SomeQuantifier) {
  EXPECT_EQ(Run("some $x in (1, 2, 3) satisfies $x > 2"), "true");
  EXPECT_EQ(Run("some $x in (1, 2, 3) satisfies $x > 3"), "false");
  EXPECT_EQ(Run("some $x in () satisfies $x > 0"), "false");
  EXPECT_EQ(Run("some $n in collection(\"nums\")/n "
                "satisfies $n/v = 100"),
            "true");
}

TEST_F(XQueryExtendedTest, EveryQuantifier) {
  EXPECT_EQ(Run("every $x in (1, 2, 3) satisfies $x > 0"), "true");
  EXPECT_EQ(Run("every $x in (1, 2, 3) satisfies $x > 1"), "false");
  // Vacuously true over the empty sequence.
  EXPECT_EQ(Run("every $x in () satisfies $x > 0"), "true");
}

TEST_F(XQueryExtendedTest, NestedQuantifierBindings) {
  EXPECT_EQ(Run("some $x in (1, 2), $y in (10, 20) "
                "satisfies $x + $y = 22"),
            "true");
  EXPECT_EQ(Run("every $x in (1, 2), $y in (10, 20) "
                "satisfies $x + $y < 23"),
            "true");
  EXPECT_EQ(Run("every $x in (1, 2), $y in (10, 20) "
                "satisfies $x + $y < 22"),
            "false");
}

TEST_F(XQueryExtendedTest, QuantifierRoundTripsThroughPrinter) {
  auto ast = ParseQuery(
      "every $x in (1, 2) satisfies some $y in (3, 4) satisfies $x < $y");
  ASSERT_TRUE(ast.ok()) << ast.status();
  auto reparsed = ParseQuery(ExprToString(**ast));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(ExprToString(**reparsed), ExprToString(**ast));
}

TEST_F(XQueryExtendedTest, QuantifierErrors) {
  EXPECT_FALSE(ParseQuery("some $x in (1)").ok());      // no satisfies
  EXPECT_FALSE(ParseQuery("some x in (1) satisfies 1").ok());
}

}  // namespace
}  // namespace partix::xquery
