// Self-healing cluster: health monitoring (suspicion accumulator, death
// declaration, probes), end-to-end response integrity, replica repair
// with versioned-catalog cutover, and the anti-entropy scrubber.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "gen/virtual_store.h"
#include "gtest/gtest.h"
#include "partix/catalog.h"
#include "partix/cluster.h"
#include "partix/health.h"
#include "partix/publisher.h"
#include "partix/query_service.h"
#include "partix/repair.h"

namespace partix::middleware {
namespace {

RetryPolicy FastRetry(size_t max_attempts) {
  RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.base_backoff_ms = 0.01;
  retry.max_backoff_ms = 0.1;
  retry.seed = 42;
  return retry;
}

const char* const kWorkload[] = {
    "count(collection(\"items\")/Item)",
    "for $i in collection(\"items\")/Item where $i/Section = \"DVD\" "
    "return $i/Name",
    "for $i in collection(\"items\")/Item "
    "where contains($i/Description, \"good\") return $i/Name",
};

/// Items fragmented by Section over 4 nodes at a configurable
/// replication factor, served through a VersionedCatalog so repair can
/// cut over atomically. Replica r of fragment i lives at node
/// (i + r) mod 4.
class SelfHealingTestBase : public ::testing::Test {
 protected:
  explicit SelfHealingTestBase(size_t replication_factor)
      : cluster_(4, xdb::DatabaseOptions(), NetworkModel()),
        publisher_(&cluster_, &catalog_) {
    gen::ItemsGenOptions options;
    options.doc_count = 40;
    options.seed = 11;
    options.sections = {"CD", "DVD", "BOOK", "TOY"};
    auto items = gen::GenerateItems(options, nullptr);
    EXPECT_TRUE(items.ok());
    frag::FragmentationSchema schema;
    schema.collection = "items";
    for (const std::string& s : options.sections) {
      auto mu = xpath::Conjunction::Parse("/Item/Section = \"" + s + "\"");
      EXPECT_TRUE(mu.ok());
      schema.fragments.emplace_back(frag::HorizontalDef{"f_" + s, *mu});
    }
    EXPECT_TRUE(publisher_
                    .PublishFragmented(*items, schema, {},
                                       replication_factor)
                    .ok());
    versioned_ = std::make_unique<VersionedCatalog>(catalog_);
    service_ = std::make_unique<QueryService>(&cluster_, versioned_.get());
    health_ = std::make_unique<HealthMonitor>(&cluster_);
    cluster_.executor().set_health_monitor(health_.get());
  }

  /// Feeds liveness probes until a permanently down node crosses the
  /// death threshold.
  void ProbeToDeath() {
    const size_t rounds = static_cast<size_t>(
        health_->policy().death_threshold / health_->policy().failure_weight);
    for (size_t i = 0; i < rounds; ++i) health_->ProbeAll();
  }

  DistributionCatalog catalog_;
  ClusterSim cluster_;
  DataPublisher publisher_;
  std::unique_ptr<VersionedCatalog> versioned_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<HealthMonitor> health_;
};

class SelfHealingTest : public SelfHealingTestBase {
 protected:
  SelfHealingTest() : SelfHealingTestBase(2) {}
};

class UnreplicatedSelfHealingTest : public SelfHealingTestBase {
 protected:
  UnreplicatedSelfHealingTest() : SelfHealingTestBase(1) {}
};

TEST_F(SelfHealingTest, SuspicionAccumulatorStateMachine) {
  // Fresh nodes are healthy with zero suspicion.
  EXPECT_EQ(health_->StateOf(1), NodeHealth::kHealthy);
  EXPECT_EQ(health_->SuspicionOf(1), 0.0);
  EXPECT_FALSE(health_->ShouldAvoid(1));

  // Failures accumulate to suspect, then to sticky death.
  health_->ReportFailure(1);
  EXPECT_EQ(health_->StateOf(1), NodeHealth::kHealthy);
  health_->ReportFailure(1);
  EXPECT_EQ(health_->StateOf(1), NodeHealth::kSuspect);
  EXPECT_FALSE(health_->ShouldAvoid(1)) << "suspect nodes stay routable";
  health_->ReportFailure(1);
  health_->ReportFailure(1);
  EXPECT_EQ(health_->StateOf(1), NodeHealth::kDead);
  EXPECT_TRUE(health_->ShouldAvoid(1));

  // Death is sticky: evidence alone cannot resurrect a declared node.
  health_->ReportSuccess(1);
  health_->ReportSuccess(1);
  EXPECT_EQ(health_->StateOf(1), NodeHealth::kDead);

  // Revive is the administrative way back.
  health_->Revive(1);
  EXPECT_EQ(health_->StateOf(1), NodeHealth::kHealthy);
  EXPECT_EQ(health_->SuspicionOf(1), 0.0);

  // Interleaved successes decay suspicion: a blip never reaches death.
  health_->ReportFailure(2);
  health_->ReportSuccess(2);
  health_->ReportFailure(2);
  health_->ReportSuccess(2);
  EXPECT_EQ(health_->StateOf(2), NodeHealth::kHealthy);
  EXPECT_EQ(health_->SuspicionOf(2), 0.0);

  // MarkDead is immediate; other nodes are unaffected throughout.
  health_->MarkDead(3);
  EXPECT_EQ(health_->StateOf(3), NodeHealth::kDead);
  EXPECT_EQ(health_->StateOf(0), NodeHealth::kHealthy);
  EXPECT_EQ(health_->DeadNodes(), std::vector<size_t>{3});
}

TEST_F(SelfHealingTest, ProbesDeclareDownNodeDead) {
  cluster_.SetNodeDown(1, true);
  ProbeToDeath();
  EXPECT_EQ(health_->StateOf(1), NodeHealth::kDead);
  EXPECT_EQ(health_->DeadNodes(), std::vector<size_t>{1});
  // Probes are evidence for healthy nodes too: they stay at zero.
  EXPECT_EQ(health_->StateOf(0), NodeHealth::kHealthy);
  EXPECT_EQ(health_->SuspicionOf(0), 0.0);
}

TEST_F(SelfHealingTest, QuarantineAvoidsNodeUntilLifted) {
  EXPECT_FALSE(health_->IsQuarantined(2));
  health_->SetQuarantined(2, true);
  EXPECT_TRUE(health_->IsQuarantined(2));
  EXPECT_TRUE(health_->ShouldAvoid(2));
  EXPECT_EQ(health_->StateOf(2), NodeHealth::kHealthy)
      << "quarantine is orthogonal to suspicion";
  health_->SetQuarantined(2, false);
  EXPECT_FALSE(health_->ShouldAvoid(2));
}

TEST_F(SelfHealingTest, CorruptResponseDetectedAndFailedOver) {
  ExecutionOptions options;
  options.retry = FastRetry(3);
  auto baseline = service_->Execute(kWorkload[1], options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  // Node 1 (f_DVD primary) corrupts every response in flight. The
  // executor must detect the digest mismatch, discard the response, and
  // serve the byte-identical answer from the replica.
  FaultProfile profile;
  profile.response_corruption_rate = 1.0;
  cluster_.SetFaultProfile(1, profile);

  auto result = service_->Execute(kWorkload[1], options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->serialized, baseline->serialized);
  EXPECT_GE(result->corrupt_responses, 1u);
  EXPECT_GE(result->failovers, 1u);
  ASSERT_EQ(result->subqueries.size(), 1u);
  EXPECT_EQ(result->subqueries[0].node, 2u);
  EXPECT_GE(result->subqueries[0].corrupt_responses, 1u);
}

TEST_F(UnreplicatedSelfHealingTest, AllCopiesCorruptFailsNeverServes) {
  // rf=1 and the only copy's node corrupts every response: the query
  // must FAIL — a corrupt answer is never returned to the client.
  FaultProfile profile;
  profile.response_corruption_rate = 1.0;
  cluster_.SetFaultProfile(1, profile);

  ExecutionOptions options;
  options.retry = FastRetry(3);
  auto result = service_->Execute(kWorkload[1], options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(Contains(result.status().message(), "corrupt response"))
      << result.status().message();
}

TEST_F(UnreplicatedSelfHealingTest, IntegrityOffServesCorruptBytes) {
  // Documents the contract: verify_integrity=false skips the digest
  // check, so wire corruption flows straight through to the client.
  ExecutionOptions options;
  options.retry = FastRetry(3);
  auto baseline = service_->Execute(kWorkload[1], options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  FaultProfile profile;
  profile.response_corruption_rate = 1.0;
  cluster_.SetFaultProfile(1, profile);
  options.verify_integrity = false;
  auto result = service_->Execute(kWorkload[1], options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->serialized, baseline->serialized);
  EXPECT_EQ(result->corrupt_responses, 0u) << "nothing was verified";
}

TEST_F(SelfHealingTest, KillAndRepairEndToEnd) {
  // The acceptance scenario: kill a node mid-workload — zero failed
  // queries; the monitor declares it dead; one repair round restores
  // the replication factor onto healthy nodes and cuts the catalog over
  // atomically; results stay byte-identical throughout.
  ExecutionOptions options;
  options.retry = FastRetry(3);
  std::vector<std::string> baseline;
  for (const char* q : kWorkload) {
    auto result = service_->Execute(q, options);
    ASSERT_TRUE(result.ok()) << q << ": " << result.status();
    baseline.push_back(result->serialized);
  }

  // Node 1 (f_DVD primary, f_CD backup) dies. Every query keeps
  // succeeding byte-identically via replicas.
  cluster_.SetNodeDown(1, true);
  for (size_t i = 0; i < std::size(kWorkload); ++i) {
    auto result = service_->Execute(kWorkload[i], options);
    ASSERT_TRUE(result.ok()) << kWorkload[i] << ": " << result.status();
    EXPECT_EQ(result->serialized, baseline[i]) << kWorkload[i];
    EXPECT_TRUE(result->complete);
  }
  // The routing failures fed the monitor as evidence; probes finish the
  // declaration deterministically.
  ProbeToDeath();
  ASSERT_EQ(health_->DeadNodes(), std::vector<size_t>{1});

  // One repair round. Node 1 held two placements (f_DVD primary, f_CD
  // backup); both must be re-replicated onto healthy nodes.
  RepairPlanner planner(&cluster_, &publisher_, health_.get(),
                        versioned_.get());
  RepairReport report = planner.RepairOnce();
  EXPECT_EQ(report.under_replicated, 2u);
  EXPECT_EQ(report.repaired, 2u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.catalog_version, 2u) << "atomic cutover installed v2";
  EXPECT_EQ(versioned_->version(), 2u);

  // The repaired catalog references no dead replicas and every fragment
  // is back at full replication on live, digest-verified copies.
  auto snapshot = versioned_->Snapshot();
  for (const std::string& name : snapshot->FragmentedCollections()) {
    auto entry = snapshot->Get(name);
    ASSERT_TRUE(entry.ok());
    for (const FragmentPlacement& p : (*entry)->placements) {
      EXPECT_EQ(p.AllNodes().size(), 2u) << p.fragment;
      for (size_t node : p.AllNodes()) {
        EXPECT_NE(node, 1u) << p.fragment << " still routed at the dead node";
        auto digest = cluster_.node(node).CollectionDigest(p.fragment);
        ASSERT_TRUE(digest.ok()) << p.fragment;
        EXPECT_EQ(*digest, p.content_digest) << p.fragment;
      }
    }
  }

  // Queries admitted after the cutover route on the repaired topology
  // and stay byte-identical.
  for (size_t i = 0; i < std::size(kWorkload); ++i) {
    auto result = service_->Execute(kWorkload[i], options);
    ASSERT_TRUE(result.ok()) << kWorkload[i] << ": " << result.status();
    EXPECT_EQ(result->serialized, baseline[i]) << kWorkload[i];
    for (const SubQueryStats& stats : result->subqueries) {
      EXPECT_NE(stats.node, 1u) << stats.fragment;
    }
  }

  // A second round finds a fully replicated cluster: no cutover.
  RepairReport again = planner.RepairOnce();
  EXPECT_EQ(again.under_replicated, 0u);
  EXPECT_EQ(again.catalog_version, 0u);
  EXPECT_EQ(versioned_->version(), 2u);
}

TEST_F(SelfHealingTest, RepairOnHealthyClusterIsANoop) {
  RepairPlanner planner(&cluster_, &publisher_, health_.get(),
                        versioned_.get());
  RepairReport report = planner.RepairOnce();
  EXPECT_EQ(report.under_replicated, 0u);
  EXPECT_EQ(report.repaired, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.catalog_version, 0u);
  EXPECT_EQ(versioned_->version(), 1u);
  EXPECT_TRUE(report.actions.empty());
}

TEST_F(SelfHealingTest, ScrubberDetectsQuarantinesAndRepairsBitRot) {
  // Silent at-rest corruption on node 1's f_DVD copy. Response digests
  // cannot catch it (the node honestly serves what it stores), so this
  // is exactly the scrubber's job: detect the divergent copy,
  // quarantine the node, rebuild from the clean replica, verify, lift.
  ASSERT_TRUE(
      cluster_.database(1).CorruptStoredDocumentText("f_DVD", 0).ok());
  auto snapshot = versioned_->Snapshot();
  auto entry = snapshot->Get("items");
  ASSERT_TRUE(entry.ok());
  uint64_t published = 0;
  for (const FragmentPlacement& p : (*entry)->placements) {
    if (p.fragment == "f_DVD") published = p.content_digest;
  }
  ASSERT_NE(published, 0u);
  auto before = cluster_.node(1).CollectionDigest("f_DVD");
  ASSERT_TRUE(before.ok());
  ASSERT_NE(*before, published) << "corruption must change the digest";

  Scrubber scrubber(&cluster_, &publisher_, health_.get(),
                    versioned_.get());
  ScrubReport report = scrubber.ScrubOnce();
  EXPECT_EQ(report.divergent, 1u);
  EXPECT_EQ(report.repaired, 1u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GE(report.checked, 8u) << "4 fragments x 2 replicas";
  EXPECT_EQ(report.skipped_no_digest, 0u);

  // The copy is byte-identical to the published bytes again and the
  // quarantine was lifted.
  auto after = cluster_.node(1).CollectionDigest("f_DVD");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, published);
  EXPECT_FALSE(health_->IsQuarantined(1));

  // A clean round finds nothing.
  ScrubReport clean = scrubber.ScrubOnce();
  EXPECT_EQ(clean.divergent, 0u);
  EXPECT_EQ(clean.repaired, 0u);
}

TEST_F(UnreplicatedSelfHealingTest, ScrubberWithoutCleanSourceQuarantines) {
  // rf=1: the only copy rots and there is nothing to rebuild from. The
  // scrubber must report the failure and leave the node quarantined —
  // surfacing the data loss instead of papering over it.
  ASSERT_TRUE(
      cluster_.database(1).CorruptStoredDocumentText("f_DVD", 0).ok());
  Scrubber scrubber(&cluster_, &publisher_, health_.get(),
                    versioned_.get());
  ScrubReport report = scrubber.ScrubOnce();
  EXPECT_EQ(report.divergent, 1u);
  EXPECT_EQ(report.repaired, 0u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_TRUE(health_->IsQuarantined(1));
}

TEST_F(SelfHealingTest, CrashRestartIsRetryableAndDropsCaches) {
  // Warm node 1's parse cache with a direct engine query, then let the
  // injected crash-restart reject a distributed attempt: the query fails
  // over (crash = retryable), and the restarted node comes back cold.
  const std::string probe = "count(collection(\"f_DVD\")/Item)";
  ASSERT_TRUE(cluster_.database(1).Execute(probe).ok());
  auto warm = cluster_.database(1).Execute(probe);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm->metrics.cache_hits, 0u)
      << "cache should be warm before the crash";

  FaultProfile profile;
  profile.crash_restart_rate = 1.0;
  cluster_.SetFaultProfile(1, profile);
  ExecutionOptions options;
  options.retry = FastRetry(3);
  auto result = service_->Execute(kWorkload[1], options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->failovers, 1u);
  ASSERT_EQ(result->subqueries.size(), 1u);
  EXPECT_EQ(result->subqueries[0].node, 2u);

  cluster_.SetFaultProfile(1, FaultProfile{});
  auto cold = cluster_.database(1).Execute(probe);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->metrics.cache_hits, 0u)
      << "restart must have dropped the caches";
}

TEST_F(SelfHealingTest, ExecutorRoutesAroundDeadNodeWithoutProbing) {
  // A declared-dead node is avoided while alternatives exist: the
  // sub-query goes straight to the replica with no attempt (and no
  // engine request) at the dead-but-actually-up node.
  health_->MarkDead(1);
  const uint64_t node1_before = cluster_.NodeRequestCount(1);
  ExecutionOptions options;
  options.retry = FastRetry(3);
  auto result = service_->Execute(kWorkload[1], options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->subqueries.size(), 1u);
  EXPECT_EQ(result->subqueries[0].node, 2u);
  EXPECT_EQ(cluster_.NodeRequestCount(1), node1_before);

  // Health is advisory: when EVERY replica is flagged, the executor
  // falls back to ignoring it rather than failing a servable query.
  health_->MarkDead(2);
  auto fallback = service_->Execute(kWorkload[1], options);
  ASSERT_TRUE(fallback.ok()) << fallback.status();
}

TEST_F(SelfHealingTest, VersionedCatalogSnapshotsAreAtomic) {
  // Readers snapshot while a writer keeps installing successors built
  // from the current catalog. Every snapshot must be a complete,
  // internally consistent catalog (all four fragments present, every
  // placement valid) — never a torn mix of versions.
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (int i = 0; i < 200; ++i) {
      DistributionCatalog next = *versioned_->Snapshot();
      versioned_->Install(std::move(next));
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto snapshot = versioned_->Snapshot();
        auto entry = snapshot->Get("items");
        if (!entry.ok() || (*entry)->placements.size() != 4) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(versioned_->version(), 201u);
}

TEST_F(SelfHealingTest, BackgroundLoopsStartAndStopCleanly) {
  // The background prober and scrubber must start, make progress, and
  // stop without deadlock or leak (TSan covers the data-race half).
  health_->Start();
  Scrubber scrubber(&cluster_, &publisher_, health_.get(),
                    versioned_.get());
  scrubber.Start(1.0);
  cluster_.SetNodeDown(3, true);
  // The prober (20 ms cadence) needs death_threshold rounds; poll
  // rather than sleep a fixed worst case.
  for (int i = 0; i < 2000 && health_->StateOf(3) != NodeHealth::kDead;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(health_->StateOf(3), NodeHealth::kDead);
  scrubber.Stop();
  health_->Stop();
  // Idempotent: double stop and restart both work.
  health_->Stop();
  health_->Start();
  health_->Stop();
}

}  // namespace
}  // namespace partix::middleware
