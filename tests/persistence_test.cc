#include "engine/persistence.h"

#include <cstdio>
#include <filesystem>

#include "fragmentation/fragmenter.h"
#include "gen/virtual_store.h"
#include "gtest/gtest.h"
#include "partix/publisher.h"
#include "workload/schemas.h"
#include "xml/compare.h"

namespace partix::xdb {
namespace {

namespace fs = std::filesystem;

class PersistenceTest : public ::testing::Test {
 protected:
  PersistenceTest() {
    dir_ = fs::temp_directory_path() /
           ("partix_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  ~PersistenceTest() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(PersistenceTest, ExportImportRoundTrip) {
  gen::ItemsGenOptions options;
  options.doc_count = 25;
  options.seed = 41;
  auto items = gen::GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());

  Database source;
  ASSERT_TRUE(source.StoreCollection(*items).ok());
  ASSERT_TRUE(ExportCollection(source, "items", dir_.string()).ok());
  EXPECT_TRUE(fs::exists(dir_ / "MANIFEST"));

  Database restored;
  ASSERT_TRUE(ImportCollection(restored, "items", dir_.string()).ok());
  EXPECT_EQ(*restored.DocumentCount("items"), items->size());

  auto docs = restored.AllDocuments("items");
  ASSERT_TRUE(docs.ok());
  for (size_t i = 0; i < items->size(); ++i) {
    bool found = false;
    for (const auto& doc : *docs) {
      if (doc->doc_name() == items->docs()[i]->doc_name()) {
        EXPECT_TRUE(xml::DocumentsEqual(*items->docs()[i], *doc));
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }

  // Queries behave the same after the round trip.
  auto a = source.Execute("count(collection(\"items\")/Item)");
  auto b = restored.Execute("count(collection(\"items\")/Item)");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->serialized, b->serialized);
}

TEST_F(PersistenceTest, MetadataSurvivesRoundTrip) {
  Database source;
  ASSERT_TRUE(source.CreateCollection("frags").ok());
  std::map<std::string, std::string> metadata = {
      {"px-src", "store-doc"},
      {"px-root", "42"},
      {"px-anc", "0:Store,22:Items"},
      {"odd", "a=b;c\td\ne\\f"},  // exercises escaping
  };
  ASSERT_TRUE(source
                  .StoreSerializedWithMetadata("frags", "f0",
                                               "<Item><Code>1</Code></Item>",
                                               metadata)
                  .ok());
  ASSERT_TRUE(ExportCollection(source, "frags", dir_.string()).ok());

  Database restored;
  ASSERT_TRUE(ImportCollection(restored, "frags", dir_.string()).ok());
  auto docs = restored.AllDocuments("frags");
  ASSERT_TRUE(docs.ok());
  ASSERT_EQ(docs->size(), 1u);
  EXPECT_EQ((*docs)[0]->metadata(), metadata);
}

TEST_F(PersistenceTest, RefusesToOverwriteExistingExport) {
  Database db;
  ASSERT_TRUE(db.CreateCollection("c").ok());
  ASSERT_TRUE(db.StoreSerialized("c", "d", "<a/>").ok());
  ASSERT_TRUE(ExportCollection(db, "c", dir_.string()).ok());
  EXPECT_EQ(ExportCollection(db, "c", dir_.string()).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(PersistenceTest, ImportMissingDirectoryFails) {
  Database db;
  EXPECT_EQ(
      ImportCollection(db, "c", (dir_ / "nope").string()).code(),
      StatusCode::kNotFound);
}

TEST_F(PersistenceTest, ImportDetectsMissingDocumentFile) {
  Database db;
  ASSERT_TRUE(db.CreateCollection("c").ok());
  ASSERT_TRUE(db.StoreSerialized("c", "d", "<a/>").ok());
  ASSERT_TRUE(ExportCollection(db, "c", dir_.string()).ok());
  fs::remove(dir_ / "000000.xml");
  Database restored;
  EXPECT_EQ(ImportCollection(restored, "c", dir_.string()).code(),
            StatusCode::kCorruption);
}

TEST_F(PersistenceTest, ExportUnknownCollectionFails) {
  Database db;
  EXPECT_FALSE(ExportCollection(db, "nope", dir_.string()).ok());
}

}  // namespace
}  // namespace partix::xdb
