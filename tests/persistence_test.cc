#include "engine/persistence.h"

#include <cstdio>
#include <filesystem>

#include "fragmentation/fragmenter.h"
#include "gen/virtual_store.h"
#include "gtest/gtest.h"
#include "partix/publisher.h"
#include "telemetry/metrics.h"
#include "workload/schemas.h"
#include "xml/compare.h"

namespace partix::xdb {
namespace {

namespace fs = std::filesystem;

class PersistenceTest : public ::testing::Test {
 protected:
  PersistenceTest() {
    dir_ = fs::temp_directory_path() /
           ("partix_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  ~PersistenceTest() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(PersistenceTest, ExportImportRoundTrip) {
  gen::ItemsGenOptions options;
  options.doc_count = 25;
  options.seed = 41;
  auto items = gen::GenerateItems(options, nullptr);
  ASSERT_TRUE(items.ok());

  Database source;
  ASSERT_TRUE(source.StoreCollection(*items).ok());
  ASSERT_TRUE(ExportCollection(source, "items", dir_.string()).ok());
  EXPECT_TRUE(fs::exists(dir_ / "MANIFEST"));

  Database restored;
  ASSERT_TRUE(ImportCollection(restored, "items", dir_.string()).ok());
  EXPECT_EQ(*restored.DocumentCount("items"), items->size());

  auto docs = restored.AllDocuments("items");
  ASSERT_TRUE(docs.ok());
  for (size_t i = 0; i < items->size(); ++i) {
    bool found = false;
    for (const auto& doc : *docs) {
      if (doc->doc_name() == items->docs()[i]->doc_name()) {
        EXPECT_TRUE(xml::DocumentsEqual(*items->docs()[i], *doc));
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }

  // Queries behave the same after the round trip.
  auto a = source.Execute("count(collection(\"items\")/Item)");
  auto b = restored.Execute("count(collection(\"items\")/Item)");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->serialized, b->serialized);
}

TEST_F(PersistenceTest, MetadataSurvivesRoundTrip) {
  Database source;
  ASSERT_TRUE(source.CreateCollection("frags").ok());
  std::map<std::string, std::string> metadata = {
      {"px-src", "store-doc"},
      {"px-root", "42"},
      {"px-anc", "0:Store,22:Items"},
      {"odd", "a=b;c\td\ne\\f"},  // exercises escaping
  };
  ASSERT_TRUE(source
                  .StoreSerializedWithMetadata("frags", "f0",
                                               "<Item><Code>1</Code></Item>",
                                               metadata)
                  .ok());
  ASSERT_TRUE(ExportCollection(source, "frags", dir_.string()).ok());

  Database restored;
  ASSERT_TRUE(ImportCollection(restored, "frags", dir_.string()).ok());
  auto docs = restored.AllDocuments("frags");
  ASSERT_TRUE(docs.ok());
  ASSERT_EQ(docs->size(), 1u);
  EXPECT_EQ((*docs)[0]->metadata(), metadata);
}

TEST_F(PersistenceTest, RefusesToOverwriteExistingExport) {
  Database db;
  ASSERT_TRUE(db.CreateCollection("c").ok());
  ASSERT_TRUE(db.StoreSerialized("c", "d", "<a/>").ok());
  ASSERT_TRUE(ExportCollection(db, "c", dir_.string()).ok());
  EXPECT_EQ(ExportCollection(db, "c", dir_.string()).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(PersistenceTest, ImportMissingDirectoryFails) {
  Database db;
  EXPECT_EQ(
      ImportCollection(db, "c", (dir_ / "nope").string()).code(),
      StatusCode::kNotFound);
}

TEST_F(PersistenceTest, ImportDetectsMissingDocumentFile) {
  Database db;
  ASSERT_TRUE(db.CreateCollection("c").ok());
  ASSERT_TRUE(db.StoreSerialized("c", "d", "<a/>").ok());
  ASSERT_TRUE(ExportCollection(db, "c", dir_.string()).ok());
  fs::remove(dir_ / "000000.xml");
  Database restored;
  EXPECT_EQ(ImportCollection(restored, "c", dir_.string()).code(),
            StatusCode::kCorruption);
}

TEST_F(PersistenceTest, ExportUnknownCollectionFails) {
  Database db;
  EXPECT_FALSE(ExportCollection(db, "nope", dir_.string()).ok());
}

TEST_F(PersistenceTest, ImportWithoutStructSidecarCountsSkippedVerification) {
  // Pre-label exports have no STRUCT sidecar, so structural-label
  // verification cannot run. That must not be silent: the import counts
  // a skipped verification (and warns on stderr) so "verified clean" is
  // distinguishable from "nothing to verify against".
  Database source;
  ASSERT_TRUE(source.CreateCollection("c").ok());
  ASSERT_TRUE(source.StoreSerialized("c", "d", "<a><b>x</b></a>").ok());
  ASSERT_TRUE(ExportCollection(source, "c", dir_.string()).ok());

  auto& registry = telemetry::MetricsRegistry::Global();
  telemetry::Counter* skipped =
      registry.GetCounter("partix_struct_verify_skipped_total");
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);

  // A modern export carries STRUCT: verification runs, nothing skipped.
  const uint64_t before = skipped->Value();
  Database restored;
  ASSERT_TRUE(ImportCollection(restored, "c", dir_.string()).ok());
  EXPECT_EQ(skipped->Value(), before);

  // Strip the sidecar (a pre-label export) and re-import.
  fs::remove(dir_ / "STRUCT");
  Database legacy;
  ::testing::internal::CaptureStderr();
  ASSERT_TRUE(ImportCollection(legacy, "c", dir_.string()).ok());
  const std::string warning = ::testing::internal::GetCapturedStderr();
  registry.set_enabled(was_enabled);

  EXPECT_EQ(skipped->Value(), before + 1);
  EXPECT_NE(warning.find("no STRUCT sidecar"), std::string::npos) << warning;
  EXPECT_NE(warning.find("verification skipped"), std::string::npos);
  // The documents themselves still import fine.
  EXPECT_EQ(*legacy.DocumentCount("c"), 1u);
}

}  // namespace
}  // namespace partix::xdb
