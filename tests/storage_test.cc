#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "storage/document_store.h"
#include "storage/indexes.h"
#include "storage/stats.h"
#include "xml/parser.h"

namespace partix::storage {
namespace {

std::shared_ptr<xml::NamePool> Pool() {
  return std::make_shared<xml::NamePool>();
}

xml::DocumentPtr Parse(const std::shared_ptr<xml::NamePool>& pool,
                       const std::string& name, const std::string& text) {
  auto result = xml::ParseXml(pool, name, text);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

TEST(DocumentStoreTest, PutAndGet) {
  auto pool = Pool();
  DocumentStore store(pool, 1 << 20);
  auto doc = Parse(pool, "d1", "<a><b>x</b></a>");
  auto slot = store.Put(*doc);
  ASSERT_TRUE(slot.ok());
  auto loaded = store.Get(*slot);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->StringValue((*loaded)->root()), "x");
  EXPECT_EQ(store.DocName(*slot), "d1");
  EXPECT_TRUE(store.Contains("d1"));
  EXPECT_EQ(*store.FindSlot("d1"), *slot);
  EXPECT_FALSE(store.FindSlot("nope").ok());
}

TEST(DocumentStoreTest, RejectsDuplicateNames) {
  auto pool = Pool();
  DocumentStore store(pool, 1 << 20);
  auto doc = Parse(pool, "d1", "<a/>");
  ASSERT_TRUE(store.Put(*doc).ok());
  EXPECT_EQ(store.Put(*doc).status().code(), StatusCode::kAlreadyExists);
}

TEST(DocumentStoreTest, ParseOnDemandCountsMetrics) {
  auto pool = Pool();
  DocumentStore store(pool, 1 << 20);
  auto doc = Parse(pool, "d1", "<a><b>hello</b></a>");
  auto slot = store.Put(*doc);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(store.metrics().parses, 0u);
  ASSERT_TRUE(store.Get(*slot).ok());
  EXPECT_EQ(store.metrics().parses, 1u);
  EXPECT_EQ(store.metrics().cache_misses, 1u);
  ASSERT_TRUE(store.Get(*slot).ok());
  EXPECT_EQ(store.metrics().parses, 1u);  // cache hit, no re-parse
  EXPECT_EQ(store.metrics().cache_hits, 1u);
  EXPECT_GT(store.metrics().bytes_parsed, 0u);
}

TEST(DocumentStoreTest, ZeroCapacityDisablesCache) {
  auto pool = Pool();
  DocumentStore store(pool, 0);
  auto doc = Parse(pool, "d1", "<a>x</a>");
  auto slot = store.Put(*doc);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(store.Get(*slot).ok());
  ASSERT_TRUE(store.Get(*slot).ok());
  EXPECT_EQ(store.metrics().parses, 2u);
}

TEST(DocumentStoreTest, LruEvictsUnderPressure) {
  auto pool = Pool();
  // Tiny cache: each parsed doc is a few hundred bytes.
  DocumentStore store(pool, 600);
  for (int i = 0; i < 8; ++i) {
    auto doc = Parse(pool, "d" + std::to_string(i),
                     "<a><b>document body " + std::to_string(i) +
                         " with some text</b></a>");
    ASSERT_TRUE(store.Put(*doc).ok());
  }
  for (DocSlot s = 0; s < 8; ++s) ASSERT_TRUE(store.Get(s).ok());
  // Evictions happened under pressure, and the metric counted them.
  EXPECT_GT(store.metrics().cache_evictions, 0u);
  // Re-reading the first document must re-parse (it was evicted).
  uint64_t parses_before = store.metrics().parses;
  ASSERT_TRUE(store.Get(0).ok());
  EXPECT_GT(store.metrics().parses, parses_before);
}

TEST(DocumentStoreTest, DropCacheForcesReparse) {
  auto pool = Pool();
  DocumentStore store(pool, 1 << 20);
  auto doc = Parse(pool, "d1", "<a>x</a>");
  auto slot = store.Put(*doc);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(store.Get(*slot).ok());
  store.DropCache();
  ASSERT_TRUE(store.Get(*slot).ok());
  EXPECT_EQ(store.metrics().parses, 2u);
  // An explicit DropCache is not an eviction: the counter stays put.
  EXPECT_EQ(store.metrics().cache_evictions, 0u);
}

TEST(PostingsTest, IntersectAndUnion) {
  PostingList a = {1, 3, 5, 7};
  PostingList b = {3, 4, 5};
  EXPECT_EQ(IntersectPostings(a, b), (PostingList{3, 5}));
  EXPECT_EQ(UnionPostings(a, b), (PostingList{1, 3, 4, 5, 7}));
  EXPECT_TRUE(IntersectPostings(a, {}).empty());
}

TEST(ElementIndexTest, FindsDocsByName) {
  auto pool = Pool();
  ElementIndex index;
  index.AddDocument(0, *Parse(pool, "a", "<Item><Code>1</Code></Item>"));
  index.AddDocument(1, *Parse(pool, "b", "<Item><Name>n</Name></Item>"));
  ASSERT_NE(index.Lookup("Item"), nullptr);
  EXPECT_EQ(*index.Lookup("Item"), (PostingList{0, 1}));
  EXPECT_EQ(*index.Lookup("Code"), (PostingList{0}));
  EXPECT_EQ(index.Lookup("Nope"), nullptr);
}

TEST(ElementIndexTest, IndexesAttributes) {
  auto pool = Pool();
  ElementIndex index;
  index.AddDocument(0, *Parse(pool, "a", "<r id=\"1\"/>"));
  ASSERT_NE(index.Lookup("id"), nullptr);
}

TEST(TextIndexTest, TokensAreLowercased) {
  auto pool = Pool();
  TextIndex index;
  index.AddDocument(0, *Parse(pool, "a", "<r>A Good Thing</r>"));
  index.AddDocument(1, *Parse(pool, "b", "<r>bad thing</r>"));
  EXPECT_EQ(*index.Lookup("good"), (PostingList{0}));
  EXPECT_EQ(*index.Lookup("GOOD"), (PostingList{0}));
  EXPECT_EQ(*index.Lookup("thing"), (PostingList{0, 1}));
}

TEST(TextIndexTest, CandidatesForContains) {
  auto pool = Pool();
  TextIndex index;
  index.AddDocument(0, *Parse(pool, "a", "<r>a good cheap disc</r>"));
  index.AddDocument(1, *Parse(pool, "b", "<r>a bad disc</r>"));
  auto good = index.CandidatesForContains("good");
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(*good, (PostingList{0}));
  auto multi = index.CandidatesForContains("good cheap");
  ASSERT_TRUE(multi.has_value());
  EXPECT_EQ(*multi, (PostingList{0}));
  auto absent = index.CandidatesForContains("zebra");
  ASSERT_TRUE(absent.has_value());
  EXPECT_TRUE(absent->empty());
  // A needle with no word tokens cannot prune.
  EXPECT_FALSE(index.CandidatesForContains("   ").has_value());
}

TEST(ValueIndexTest, ExactMatches) {
  auto pool = Pool();
  ValueIndex index;
  index.AddDocument(0, *Parse(pool, "a",
                              "<Item><Section>CD</Section></Item>"));
  index.AddDocument(1, *Parse(pool, "b",
                              "<Item><Section>DVD</Section></Item>"));
  ASSERT_NE(index.Lookup("Section", "CD"), nullptr);
  EXPECT_EQ(*index.Lookup("Section", "CD"), (PostingList{0}));
  EXPECT_EQ(index.Lookup("Section", "VHS"), nullptr);
}

TEST(ValueIndexTest, SkipsLongValuesAndComplexContent) {
  auto pool = Pool();
  ValueIndex index;
  std::string longval(100, 'x');
  index.AddDocument(0, *Parse(pool, "a", "<r><v>" + longval + "</v></r>"));
  EXPECT_EQ(index.Lookup("v", longval), nullptr);
  // <r> has element content; only <v> is simple.
  EXPECT_EQ(index.Lookup("r", longval), nullptr);
}

TEST(ValueIndexTest, IndexesAttributeValues) {
  auto pool = Pool();
  ValueIndex index;
  index.AddDocument(3, *Parse(pool, "a", "<r kind=\"x\"/>"));
  ASSERT_NE(index.Lookup("kind", "x"), nullptr);
  EXPECT_EQ(*index.Lookup("kind", "x"), (PostingList{3}));
}

TEST(CollectionStatsTest, Accumulates) {
  auto pool = Pool();
  CollectionStats stats;
  auto d1 = Parse(pool, "a", "<Item><Code>1</Code></Item>");
  auto d2 = Parse(pool, "b", "<Item><Code>2</Code></Item>");
  stats.AddDocument(*d1, 100);
  stats.AddDocument(*d2, 200);
  EXPECT_EQ(stats.document_count(), 2u);
  EXPECT_EQ(stats.total_serialized_bytes(), 300u);
  EXPECT_DOUBLE_EQ(stats.AvgDocBytes(), 150.0);
  EXPECT_EQ(stats.element_counts().at("Item"), 2u);
  EXPECT_EQ(stats.element_counts().at("Code"), 2u);
  EXPECT_FALSE(stats.Summary().empty());
}

TEST(CollectionStatsTest, RecordAccessFoldsStoreDeltas) {
  // The engine feeds each query's parse-cache delta back into the
  // fragment's stats; the advisor reads hot-fragment access patterns
  // from here.
  CollectionStats stats;
  StoreMetrics delta;
  delta.parses = 3;
  delta.bytes_parsed = 1200;
  delta.cache_hits = 5;
  delta.cache_misses = 3;
  delta.cache_evictions = 1;
  stats.RecordAccess(delta);
  stats.RecordAccess(delta);

  const AccessStats& access = stats.access();
  EXPECT_EQ(access.queries, 2u);
  EXPECT_EQ(access.parses, 6u);
  EXPECT_EQ(access.bytes_parsed, 2400u);
  EXPECT_EQ(access.cache_hits, 10u);
  EXPECT_EQ(access.cache_misses, 6u);
  EXPECT_EQ(access.cache_evictions, 2u);
  EXPECT_DOUBLE_EQ(access.CacheHitRatio(), 10.0 / 16.0);
  // The summary now carries the access line.
  EXPECT_NE(stats.Summary().find("accessed by"), std::string::npos)
      << stats.Summary();
}

TEST(DocumentStoreTest, ShrinkingCapacityUnderConcurrentLoadEvictsPromptly) {
  // The store is single-thread-only; concurrent access goes through an
  // external mutex exactly like the middleware driver's per-node lock.
  // Reader threads hammer Get while a control thread repeatedly shrinks
  // the cache byte budget; eviction must keep cache_bytes within the
  // *current* capacity at every step and the byte accounting must stay
  // conservation-clean. (scripts/check.sh runs this under TSan.)
  auto pool = Pool();
  DocumentStore store(pool, size_t{1} << 20);
  constexpr int kDocs = 24;
  for (int i = 0; i < kDocs; ++i) {
    ASSERT_TRUE(store
                    .PutSerialized("d" + std::to_string(i),
                                   "<a><b>payload number " +
                                       std::to_string(i) +
                                       " with some text</b></a>")
                    .ok());
  }
  std::mutex mu;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      int i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(mu);
        auto doc = store.Get(static_cast<DocSlot>(i % kDocs));
        ASSERT_TRUE(doc.ok()) << doc.status();
        EXPECT_LE(store.cache_bytes(), store.cache_capacity_bytes());
        i += 3;
      }
    });
  }
  // Shrink the budget step by step down to (nearly) nothing.
  size_t capacity = size_t{1} << 20;
  for (int step = 0; step < 40; ++step) {
    capacity = capacity > 2048 ? capacity / 2 : 2048;
    {
      std::lock_guard<std::mutex> lock(mu);
      store.set_cache_capacity_bytes(capacity);
      // Prompt eviction: the shrink itself brings the cache under the
      // new bound — no waiting for the next Get.
      EXPECT_LE(store.cache_bytes(), capacity);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  // Conservation after the churn: the cached-byte figure equals the sum
  // of the cached entries' parsed sizes (re-derivable by draining).
  const size_t cached_before_drop = store.cache_bytes();
  EXPECT_EQ(store.ShedCacheBytes(size_t{1} << 30), cached_before_drop);
  EXPECT_EQ(store.cache_bytes(), 0u);
}

}  // namespace
}  // namespace partix::storage
